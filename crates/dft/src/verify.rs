//! Mission-mode equivalence checking of DFT insertion.
//!
//! Wrapper insertion rewires functional nets through muxes and XOR taps;
//! a bug there silently corrupts the *product*, not just the test. This
//! module verifies, by bit-parallel random co-simulation, that with
//! `test_en = 0` the testable netlist computes exactly what the original
//! die computes at every functional sink (primary outputs, outbound TSVs
//! and flip-flop D captures) — for **any** state of the wrapper cells,
//! which are driven with random values precisely so that a non-transparent
//! wrapper shows up as a mismatch.

use prebond3d_atpg::sim::{Pattern, Simulator};
use prebond3d_atpg::TestAccess;
use prebond3d_netlist::{GateId, GateKind, Netlist};
use prebond3d_rng::StdRng;

use crate::testable::TestableDie;

/// A functional divergence found by [`mission_equivalent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Name of the sink whose captured/driven value diverged.
    pub sink: String,
    /// Pattern index within the failing batch.
    pub pattern: usize,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mission-mode mismatch at sink `{}` (pattern {})",
            self.sink, self.pattern
        )
    }
}

impl std::error::Error for Mismatch {}

/// Mission-mode access: every functional source (pads, scan flip-flops,
/// bonded TSV inputs) is driven; `extra` (e.g. wrapper cells) are driven
/// too when present.
fn mission_access(netlist: &Netlist, pin_test_en: Option<GateId>) -> TestAccess {
    let mut controllable = Vec::new();
    for (id, gate) in netlist.iter() {
        if matches!(
            gate.kind,
            GateKind::Input | GateKind::ScanDff | GateKind::TsvIn | GateKind::Wrapper
        ) {
            controllable.push(id);
        }
    }
    let mut access = TestAccess::new(netlist, controllable, Vec::new(), Vec::new());
    if let Some(te) = pin_test_en {
        access.pin(te, false);
    }
    access
}

/// The functional sinks of `original`, compared by captured/driven value:
/// `(sink name, driver in original)`.
fn functional_sinks(original: &Netlist) -> Vec<(String, GateId)> {
    original
        .iter()
        .filter(|(_, g)| g.kind.is_sink())
        .map(|(_, g)| (g.name.clone(), g.inputs[0]))
        .collect()
}

/// Verify mission-mode equivalence over `batches × 64` random patterns.
///
/// # Errors
///
/// Returns the first [`Mismatch`] found. A mismatch means the wrapper
/// insertion changed functional behaviour — an insertion bug.
pub fn mission_equivalent(
    original: &Netlist,
    die: &TestableDie,
    batches: usize,
    seed: u64,
) -> Result<(), Mismatch> {
    let testable = &die.netlist;
    let orig_access = mission_access(original, None);
    let test_access = mission_access(testable, Some(die.test_en));
    let orig_sim = Simulator::new(original);
    let test_sim = Simulator::new(testable);
    let sinks = functional_sinks(original);
    let mut rng = StdRng::seed_from_u64(seed);

    for _ in 0..batches {
        // Shared random values for the common sources (matched by name);
        // testable-only sources (wrapper cells) get independent randoms.
        let orig_patterns: Vec<Pattern> = (0..64)
            .map(|_| Pattern {
                bits: (0..orig_access.width()).map(|_| rng.gen()).collect(),
            })
            .collect();
        let test_patterns: Vec<Pattern> = orig_patterns
            .iter()
            .map(|p| {
                let mut bits = vec![false; test_access.width()];
                for (rank, &src) in test_access.controllable().iter().enumerate() {
                    let name = &testable.gate(src).name;
                    bits[rank] = match original.find(name) {
                        Some(orig_id) => {
                            let orig_rank = orig_access
                                .rank_of(orig_id)
                                .expect("common sources are controllable");
                            p.bits[orig_rank]
                        }
                        // Wrapper cells and test_en: random (test_en is
                        // pinned to 0 by the access model anyway).
                        None => rng.gen(),
                    };
                }
                Pattern { bits }
            })
            .collect();

        let orig_vals = orig_sim
            .run_batch(original, &orig_access, &orig_patterns)
            .expect("equivalence window holds at most 64 patterns");
        let test_vals = test_sim
            .run_batch(testable, &test_access, &test_patterns)
            .expect("equivalence window holds at most 64 patterns");

        for (name, orig_driver) in &sinks {
            let test_sink = testable
                .find(name)
                .expect("DFT insertion preserves sink names");
            let test_driver = testable.gate(test_sink).inputs[0];
            let (ov, ou) = orig_vals[orig_driver.index()];
            let (tv, tu) = test_vals[test_driver.index()];
            // Compare where both are known; a knownness change alone is
            // also a divergence (the testable netlist must not lose
            // determinism in mission mode).
            let diff = (ov ^ tv) & !(ou | tu) | (ou ^ tu);
            if diff != 0 {
                return Err(Mismatch {
                    sink: name.clone(),
                    pattern: diff.trailing_zeros() as usize,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testable::apply;
    use crate::wrapper::{WrapAssignment, WrapPlan, WrapperSource};
    use prebond3d_netlist::itc99;

    fn die() -> Netlist {
        let spec = itc99::DieSpec {
            name: "verify_die".into(),
            scan_flip_flops: 12,
            gates: 200,
            inbound_tsvs: 8,
            outbound_tsvs: 8,
            primary_inputs: 4,
            primary_outputs: 4,
            seed: 11,
        };
        itc99::generate_die(&spec)
    }

    #[test]
    fn all_dedicated_insertion_is_transparent() {
        let original = die();
        let wrapped = apply(&original, &WrapPlan::all_dedicated(&original)).unwrap();
        mission_equivalent(&original, &wrapped, 4, 7).expect("dedicated wrapping is transparent");
    }

    #[test]
    fn reuse_heavy_insertion_is_transparent() {
        let original = die();
        let ffs = original.flip_flops();
        let mut plan = WrapPlan::default();
        // Each of the first FFs wraps one inbound and one outbound TSV.
        let inbound = original.inbound_tsvs();
        let outbound = original.outbound_tsvs();
        for (i, (&ti, &to)) in inbound.iter().zip(outbound.iter()).enumerate() {
            plan.assignments.push(WrapAssignment {
                source: WrapperSource::ReusedScanFf(ffs[i % ffs.len().min(8)]),
                inbound: vec![ti],
                outbound: vec![to],
            });
        }
        // Deduplicate FF reuse: keep only first assignment per FF, rest
        // dedicated.
        let mut seen = std::collections::HashSet::new();
        for a in &mut plan.assignments {
            if let WrapperSource::ReusedScanFf(ff) = a.source {
                if !seen.insert(ff) {
                    a.source = WrapperSource::Dedicated;
                }
            }
        }
        let wrapped = apply(&original, &plan).unwrap();
        mission_equivalent(&original, &wrapped, 4, 9).expect("reuse wrapping is transparent");
    }

    #[test]
    fn verifier_detects_test_mode_divergence() {
        // Negative control: force test_en = 1 by lying about the pin; the
        // verifier must see the divergence (wrapper values leak into
        // functional sinks).
        let original = die();
        let wrapped = apply(&original, &WrapPlan::all_dedicated(&original)).unwrap();
        // Rebuild by hand with the test_en pin inverted.
        let orig_access = mission_access(&original, None);
        let mut test_access = mission_access(&wrapped.netlist, None);
        test_access.pin(wrapped.test_en, true); // WRONG mode on purpose
        let orig_sim = Simulator::new(&original);
        let test_sim = Simulator::new(&wrapped.netlist);
        let sinks = functional_sinks(&original);
        let mut rng = StdRng::seed_from_u64(3);
        let orig_patterns: Vec<Pattern> = (0..64)
            .map(|_| Pattern {
                bits: (0..orig_access.width()).map(|_| rng.gen()).collect(),
            })
            .collect();
        let test_patterns: Vec<Pattern> = orig_patterns
            .iter()
            .map(|p| {
                let mut bits = vec![false; test_access.width()];
                for (rank, &src) in test_access.controllable().iter().enumerate() {
                    let name = &wrapped.netlist.gate(src).name;
                    bits[rank] = match original.find(name) {
                        Some(orig_id) => p.bits[orig_access.rank_of(orig_id).unwrap()],
                        None => rng.gen(),
                    };
                }
                Pattern { bits }
            })
            .collect();
        let ov = orig_sim.run_batch(&original, &orig_access, &orig_patterns).unwrap();
        let tv = test_sim
            .run_batch(&wrapped.netlist, &test_access, &test_patterns)
            .unwrap();
        let mut diverged = false;
        for (name, orig_driver) in &sinks {
            let test_sink = wrapped.netlist.find(name).unwrap();
            let test_driver = wrapped.netlist.gate(test_sink).inputs[0];
            let (a, au) = ov[orig_driver.index()];
            let (b, bu) = tv[test_driver.index()];
            if ((a ^ b) & !(au | bu)) | (au ^ bu) != 0 {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "test mode must visibly diverge from mission mode");
    }
}

//! Scan insertion: convert plain flip-flops to scan flip-flops and stitch
//! a scan chain.

use prebond3d_netlist::{Gate, GateId, GateKind, Netlist, NetlistError};

/// A stitched scan chain: flip-flop order from scan-in to scan-out.
///
/// The chain order is physical-design metadata (shift wiring); the
/// combinational test model does not depend on it, but reports and the
/// pattern-count accounting (`patterns × chain length` cycles) do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanChain {
    /// Scan elements in shift order.
    pub order: Vec<GateId>,
}

impl ScanChain {
    /// Chain length in cells.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` for a chain with no cells.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Tester cycles to apply `patterns` patterns through this chain
    /// (shift-dominated estimate: `(patterns + 1) × length`).
    pub fn test_cycles(&self, patterns: usize) -> usize {
        (patterns + 1) * self.order.len().max(1)
    }
}

/// Convert every [`GateKind::Dff`] in `netlist` to a [`GateKind::ScanDff`]
/// and return the modified netlist plus the stitched chain (id order).
///
/// # Errors
///
/// Propagates netlist revalidation errors (cannot occur for inputs that
/// were valid — the conversion preserves structure — but surfaced rather
/// than unwrapped).
pub fn insert_scan(netlist: &Netlist) -> Result<(Netlist, ScanChain), NetlistError> {
    let name = netlist.name().to_string();
    let gates: Vec<Gate> = netlist
        .iter()
        .map(|(_, g)| {
            let mut g = g.clone();
            if g.kind == GateKind::Dff {
                g.kind = GateKind::ScanDff;
            }
            g
        })
        .collect();
    let scanned = Netlist::from_gates(name, gates)?;
    let order = scanned.flip_flops();
    Ok((scanned, ScanChain { order }))
}

/// Re-order a scan chain by physical proximity: greedy nearest-neighbour
/// from the cell closest to the die origin, the standard post-placement
/// scan-stitching heuristic. Shorter stitch wiring means less routing and
/// lower shift power; the returned chain contains the same cells.
pub fn stitch_by_placement(chain: &ScanChain, placement: &prebond3d_place::Placement) -> ScanChain {
    if chain.order.len() <= 2 {
        return chain.clone();
    }
    let mut remaining: Vec<GateId> = chain.order.clone();
    // Start nearest to the origin.
    let start_idx = remaining
        .iter()
        .enumerate()
        .min_by(|(_, &a), (_, &b)| {
            let pa = placement.location(a);
            let pb = placement.location(b);
            (pa.x + pa.y)
                .partial_cmp(&(pb.x + pb.y))
                .expect("finite coordinates")
        })
        .map(|(i, _)| i)
        .expect("non-empty chain");
    let mut order = vec![remaining.swap_remove(start_idx)];
    while !remaining.is_empty() {
        let last = *order.last().expect("non-empty");
        let next_idx = remaining
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| {
                placement
                    .distance(last, a)
                    .partial_cmp(&placement.distance(last, b))
                    .expect("finite distances")
            })
            .map(|(i, _)| i)
            .expect("non-empty remaining");
        order.push(remaining.swap_remove(next_idx));
    }
    ScanChain { order }
}

/// Total Manhattan stitch wirelength of a chain under `placement`.
pub fn stitch_wirelength(
    chain: &ScanChain,
    placement: &prebond3d_place::Placement,
) -> prebond3d_celllib::Distance {
    prebond3d_celllib::Distance(
        chain
            .order
            .windows(2)
            .map(|w| placement.distance(w[0], w[1]).0)
            .sum(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::{itc99, NetlistBuilder};
    use prebond3d_place::{place, PlaceConfig};

    #[test]
    fn converts_all_dffs() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let q1 = b.dff(a, "q1");
        let q2 = b.scan_dff(q1, "q2");
        b.output(q2, "o");
        let n = b.finish().unwrap();
        let (scanned, chain) = insert_scan(&n).unwrap();
        assert_eq!(scanned.stats().flip_flops, 0);
        assert_eq!(scanned.stats().scan_flip_flops, 2);
        assert_eq!(chain.len(), 2);
        assert!(!chain.is_empty());
    }

    #[test]
    fn placement_stitching_shortens_the_chain() {
        let die = itc99::generate_flat("scan_demo", 300, 40, 8, 8, 5);
        let placement = place(&die, &PlaceConfig::default(), 1);
        let (_, chain) = insert_scan(&die).unwrap();
        let stitched = stitch_by_placement(&chain, &placement);
        assert_eq!(stitched.len(), chain.len());
        // Same cells, possibly different order.
        let mut a = chain.order.clone();
        let mut b = stitched.order.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // Nearest-neighbour stitching must not be longer than id order.
        let before = stitch_wirelength(&chain, &placement);
        let after = stitch_wirelength(&stitched, &placement);
        assert!(
            after <= before,
            "stitching should shorten wiring: {before} → {after}"
        );
    }

    #[test]
    fn test_cycles_scale_with_chain() {
        let chain = ScanChain {
            order: vec![GateId(0), GateId(1), GateId(2)],
        };
        assert_eq!(chain.test_cycles(10), 33);
        let empty = ScanChain { order: vec![] };
        assert_eq!(empty.test_cycles(10), 11);
    }
}

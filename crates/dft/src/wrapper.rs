//! Wrapper-assignment plans: which cell wraps which TSVs.

use std::collections::HashSet;

use prebond3d_netlist::{GateId, GateKind, Netlist};

/// The cell implementing a wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WrapperSource {
    /// An existing scan flip-flop is reused (Fig. 3 hardware).
    ReusedScanFf(GateId),
    /// A dedicated wrapper cell is inserted (Fig. 2 hardware).
    Dedicated,
}

/// One wrapper cell and the TSVs it serves (one clique of the WCM
/// solution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrapAssignment {
    /// The implementing cell.
    pub source: WrapperSource,
    /// Inbound TSVs controlled by this cell.
    pub inbound: Vec<GateId>,
    /// Outbound TSVs observed by this cell.
    pub outbound: Vec<GateId>,
}

impl WrapAssignment {
    /// Number of TSVs served.
    pub fn tsv_count(&self) -> usize {
        self.inbound.len() + self.outbound.len()
    }
}

/// A complete wrapper plan for one die.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WrapPlan {
    /// One entry per wrapper cell.
    pub assignments: Vec<WrapAssignment>,
}

impl WrapPlan {
    /// The Fig. 2 baseline: every TSV gets its own dedicated wrapper cell.
    pub fn all_dedicated(netlist: &Netlist) -> Self {
        let mut assignments = Vec::new();
        for t in netlist.inbound_tsvs() {
            assignments.push(WrapAssignment {
                source: WrapperSource::Dedicated,
                inbound: vec![t],
                outbound: vec![],
            });
        }
        for t in netlist.outbound_tsvs() {
            assignments.push(WrapAssignment {
                source: WrapperSource::Dedicated,
                inbound: vec![],
                outbound: vec![t],
            });
        }
        WrapPlan { assignments }
    }

    /// Number of *additional* (dedicated) wrapper cells — the paper's cost
    /// metric.
    pub fn additional_wrapper_cells(&self) -> usize {
        self.assignments
            .iter()
            .filter(|a| a.source == WrapperSource::Dedicated && a.tsv_count() > 0)
            .count()
    }

    /// Number of reused scan flip-flops.
    pub fn reused_scan_ffs(&self) -> usize {
        self.assignments
            .iter()
            .filter(|a| matches!(a.source, WrapperSource::ReusedScanFf(_)) && a.tsv_count() > 0)
            .count()
    }

    /// Validate the plan against a netlist: every TSV wrapped exactly once,
    /// ids of the right kind, each scan flip-flop reused at most once.
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, netlist: &Netlist) -> Result<(), String> {
        let mut seen_tsv: HashSet<GateId> = HashSet::new();
        let mut seen_ff: HashSet<GateId> = HashSet::new();
        for (i, a) in self.assignments.iter().enumerate() {
            if let WrapperSource::ReusedScanFf(ff) = a.source {
                match netlist.get(ff) {
                    Some(g) if g.kind == GateKind::ScanDff => {}
                    _ => return Err(format!("assignment {i}: {ff} is not a scan flip-flop")),
                }
                if !seen_ff.insert(ff) {
                    return Err(format!("assignment {i}: scan FF {ff} reused twice"));
                }
            }
            for &t in &a.inbound {
                match netlist.get(t) {
                    Some(g) if g.kind == GateKind::TsvIn => {}
                    _ => return Err(format!("assignment {i}: {t} is not an inbound TSV")),
                }
                if !seen_tsv.insert(t) {
                    return Err(format!("assignment {i}: TSV {t} wrapped twice"));
                }
            }
            for &t in &a.outbound {
                match netlist.get(t) {
                    Some(g) if g.kind == GateKind::TsvOut => {}
                    _ => return Err(format!("assignment {i}: {t} is not an outbound TSV")),
                }
                if !seen_tsv.insert(t) {
                    return Err(format!("assignment {i}: TSV {t} wrapped twice"));
                }
            }
        }
        let all_in = netlist.inbound_tsvs();
        let all_out = netlist.outbound_tsvs();
        for &t in all_in.iter().chain(all_out.iter()) {
            if !seen_tsv.contains(&t) {
                return Err(format!(
                    "TSV `{}` is not wrapped by any assignment",
                    netlist.gate(t).name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::NetlistBuilder;

    fn die() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let ti = b.tsv_in("ti");
        let g = b.gate(GateKind::And, &[a, ti], "g");
        let q = b.scan_dff(g, "q");
        b.tsv_out(q, "to");
        b.output(q, "o");
        b.finish().unwrap()
    }

    #[test]
    fn all_dedicated_covers_everything() {
        let n = die();
        let plan = WrapPlan::all_dedicated(&n);
        assert_eq!(plan.additional_wrapper_cells(), 2);
        assert_eq!(plan.reused_scan_ffs(), 0);
        assert!(plan.validate(&n).is_ok());
    }

    #[test]
    fn reuse_counts_and_validates() {
        let n = die();
        let q = n.find("q").unwrap();
        let ti = n.find("ti").unwrap();
        let to = n.find("to").unwrap();
        let plan = WrapPlan {
            assignments: vec![WrapAssignment {
                source: WrapperSource::ReusedScanFf(q),
                inbound: vec![ti],
                outbound: vec![to],
            }],
        };
        assert_eq!(plan.additional_wrapper_cells(), 0);
        assert_eq!(plan.reused_scan_ffs(), 1);
        assert!(plan.validate(&n).is_ok());
    }

    #[test]
    fn validation_catches_unwrapped_and_double_wrapped() {
        let n = die();
        let ti = n.find("ti").unwrap();
        let plan = WrapPlan {
            assignments: vec![WrapAssignment {
                source: WrapperSource::Dedicated,
                inbound: vec![ti],
                outbound: vec![],
            }],
        };
        let err = plan.validate(&n).unwrap_err();
        assert!(err.contains("not wrapped"), "{err}");

        let double = WrapPlan {
            assignments: vec![
                WrapAssignment {
                    source: WrapperSource::Dedicated,
                    inbound: vec![ti],
                    outbound: vec![],
                },
                WrapAssignment {
                    source: WrapperSource::Dedicated,
                    inbound: vec![ti],
                    outbound: vec![n.find("to").unwrap()],
                },
            ],
        };
        let err = double.validate(&n).unwrap_err();
        assert!(err.contains("wrapped twice"), "{err}");
    }

    #[test]
    fn validation_checks_kinds_and_single_reuse() {
        let n = die();
        let q = n.find("q").unwrap();
        let g = n.find("g").unwrap();
        let bad_kind = WrapPlan {
            assignments: vec![WrapAssignment {
                source: WrapperSource::ReusedScanFf(g),
                inbound: vec![],
                outbound: vec![],
            }],
        };
        assert!(bad_kind.validate(&n).unwrap_err().contains("not a scan"));

        let double_ff = WrapPlan {
            assignments: vec![
                WrapAssignment {
                    source: WrapperSource::ReusedScanFf(q),
                    inbound: vec![n.find("ti").unwrap()],
                    outbound: vec![],
                },
                WrapAssignment {
                    source: WrapperSource::ReusedScanFf(q),
                    inbound: vec![],
                    outbound: vec![n.find("to").unwrap()],
                },
            ],
        };
        assert!(double_ff.validate(&n).unwrap_err().contains("reused twice"));
    }
}

//! Materialize a [`WrapPlan`] into a testable netlist.
//!
//! The transformation inserts the paper's Fig. 2 / Fig. 3 hardware as real
//! gates:
//!
//! * every wrapped **inbound** TSV gets a 2:1 mux in front of its fanout:
//!   `mux(tsv_raw, cell_q, test_en)` — functional data passes through the
//!   mux (costing its delay, which is why wrapping is not timing-free) and
//!   the wrapper cell drives the logic in test mode;
//! * every wrapped **outbound** TSV gets an XOR tap on its driving net,
//!   chained into the wrapper cell's D input behind a
//!   `mux(functional_d, xor_chain, test_en)`;
//! * dedicated wrapper cells are [`GateKind::Wrapper`] scan cells; a
//!   control-only dedicated cell's D is tied to constant 0;
//! * a single `test_en` primary input controls all muxes.
//!
//! Original gate ids are preserved (new gates are appended), so cone data,
//! placements and WCM bookkeeping computed on the original die remain
//! valid for the original portion; [`TestableDie::placement_for`] extends a
//! pre-DFT placement with anchored locations for the inserted gates.

use std::collections::HashMap;

use prebond3d_netlist::{Gate, GateId, GateKind, Netlist};
use prebond3d_obs as obs;
use prebond3d_place::{Placement, Point};

use crate::wrapper::{WrapPlan, WrapperSource};

/// The result of applying a wrapper plan.
#[derive(Debug, Clone, PartialEq)]
pub struct TestableDie {
    /// The DFT-inserted netlist.
    pub netlist: Netlist,
    /// The `test_en` control input.
    pub test_en: GateId,
    /// Wrapper cell per plan assignment (reused FF id or new Wrapper id),
    /// same order as the plan's assignments.
    pub cells: Vec<GateId>,
    /// Anchors for inserted gates: `(new_gate, original_gate_to_colocate)`.
    anchors: Vec<(GateId, Option<GateId>)>,
    /// Length of the original netlist (ids below this are unchanged).
    original_len: usize,
}

impl TestableDie {
    /// Number of gates added by DFT insertion.
    pub fn added_gates(&self) -> usize {
        self.netlist.len() - self.original_len
    }

    /// Extend `original` (a placement of the pre-DFT die) to cover the
    /// testable netlist: inserted gates sit at their anchor's location
    /// (mux at its TSV, XOR at its wrapper cell, `test_en` at the die
    /// origin).
    ///
    /// # Panics
    ///
    /// Panics if `original` does not match the pre-DFT die.
    pub fn placement_for(&self, original: &Placement) -> Placement {
        assert_eq!(
            original.len(),
            self.original_len,
            "placement must cover the pre-DFT die"
        );
        let mut points: Vec<Point> = (0..self.original_len)
            .map(|i| original.location(GateId(i as u32)))
            .collect();
        points.resize(self.netlist.len(), Point { x: 0.0, y: 0.0 });
        // Anchors are recorded in creation order and may reference earlier
        // *inserted* gates (an XOR anchored at a dedicated wrapper cell),
        // so resolve against the growing point table, not `original`.
        for &(gate, anchor) in &self.anchors {
            if let Some(a) = anchor {
                points[gate.index()] = points[a.index()];
            }
        }
        Placement::new(points, original.width(), original.height())
    }
}

/// Apply `plan` to `die`, producing the testable netlist.
///
/// # Errors
///
/// Returns a descriptive error when the plan fails
/// [`WrapPlan::validate`], and propagates netlist revalidation errors.
pub fn apply(die: &Netlist, plan: &WrapPlan) -> Result<TestableDie, Box<dyn std::error::Error>> {
    let _span = obs::span("dft_insert");
    plan.validate(die).map_err(PlanError)?;

    let original_len = die.len();
    let mut gates: Vec<Gate> = die.iter().map(|(_, g)| g.clone()).collect();
    let mut anchors: Vec<(GateId, Option<GateId>)> = Vec::new();

    let push = |gates: &mut Vec<Gate>,
                anchors: &mut Vec<(GateId, Option<GateId>)>,
                gate: Gate,
                anchor: Option<GateId>|
     -> GateId {
        let id = GateId(gates.len() as u32);
        gates.push(gate);
        anchors.push((id, anchor));
        id
    };

    let test_en = push(
        &mut gates,
        &mut anchors,
        Gate::new("test_en", GateKind::Input, vec![]),
        None,
    );

    // Phase 1: wrapper cells and inbound muxes.
    let mut cells: Vec<GateId> = Vec::with_capacity(plan.assignments.len());
    let mut mux_of: HashMap<GateId, GateId> = HashMap::new();
    for (i, a) in plan.assignments.iter().enumerate() {
        let cell = match a.source {
            WrapperSource::ReusedScanFf(ff) => ff,
            WrapperSource::Dedicated => {
                let anchor = a.inbound.first().or(a.outbound.first()).copied();
                push(
                    &mut gates,
                    &mut anchors,
                    // Placeholder D; fixed in phase 3.
                    Gate::new(format!("wrapcell__{i}"), GateKind::Wrapper, vec![GateId(0)]),
                    anchor,
                )
            }
        };
        cells.push(cell);
        for &t in &a.inbound {
            let name = format!("wrapmux__{}", die.gate(t).name);
            let mux = push(
                &mut gates,
                &mut anchors,
                Gate::new(name, GateKind::Mux2, vec![t, cell, test_en]),
                Some(t),
            );
            mux_of.insert(t, mux);
        }
    }

    // Phase 2: rewire original gates' references to wrapped inbound TSVs.
    for gate in gates.iter_mut().take(original_len) {
        for input in &mut gate.inputs {
            if let Some(&mux) = mux_of.get(input) {
                *input = mux;
            }
        }
    }

    // Phase 3: observation XOR chains and capture muxes.
    let mut const0: Option<GateId> = None;
    for (i, a) in plan.assignments.iter().enumerate() {
        let cell = cells[i];
        if a.outbound.is_empty() {
            if let WrapperSource::Dedicated = a.source {
                // Control-only dedicated cell: tie D to constant 0.
                let c0 = *const0.get_or_insert_with(|| {
                    push(
                        &mut gates,
                        &mut anchors,
                        Gate::new("wrap_const0", GateKind::Const0, vec![]),
                        None,
                    )
                });
                gates[cell.index()].inputs = vec![c0];
            }
            continue;
        }
        // Chain: start from the first tap (dedicated) or fold taps into the
        // functional D (reused).
        let mut chain: Option<GateId> = None;
        for &t in &a.outbound {
            let tap = gates[t.index()].inputs[0];
            chain = Some(match chain {
                None => tap,
                Some(prev) => push(
                    &mut gates,
                    &mut anchors,
                    Gate::new(
                        format!("wrapxor__{}", die.gate(t).name),
                        GateKind::Xor,
                        vec![prev, tap],
                    ),
                    Some(cell),
                ),
            });
        }
        let chain = chain.expect("non-empty outbound list");
        match a.source {
            WrapperSource::Dedicated => {
                gates[cell.index()].inputs = vec![chain];
            }
            WrapperSource::ReusedScanFf(ff) => {
                // Fig. 3b: the observation XOR folds the tap chain into the
                // functional D, and the capture mux selects that path only
                // in test mode.
                let func_d = gates[ff.index()].inputs[0];
                let obs = push(
                    &mut gates,
                    &mut anchors,
                    Gate::new(
                        format!("wrapobs__{}", die.gate(ff).name),
                        GateKind::Xor,
                        vec![func_d, chain],
                    ),
                    Some(ff),
                );
                let dmux = push(
                    &mut gates,
                    &mut anchors,
                    Gate::new(
                        format!("wrapdmux__{}", die.gate(ff).name),
                        GateKind::Mux2,
                        vec![func_d, obs, test_en],
                    ),
                    Some(ff),
                );
                gates[ff.index()].inputs = vec![dmux];
            }
        }
    }

    obs::count("dft.wrapper_cells", cells.len() as u64);
    obs::count("dft.gates_added", (gates.len() - original_len) as u64);
    let netlist = Netlist::from_gates(format!("{}_testable", die.name()), gates)?;
    Ok(TestableDie {
        netlist,
        test_en,
        cells,
        anchors,
        original_len,
    })
}

/// Wrapper-plan validation failure.
#[derive(Debug)]
struct PlanError(String);

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid wrap plan: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::WrapAssignment;
    use prebond3d_netlist::NetlistBuilder;

    fn die() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let ti0 = b.tsv_in("ti0");
        let ti1 = b.tsv_in("ti1");
        let g1 = b.gate(GateKind::And, &[a, ti0], "g1");
        let g2 = b.gate(GateKind::Or, &[g1, ti1], "g2");
        let q = b.scan_dff(g2, "q");
        let g3 = b.gate(GateKind::Not, &[q], "g3");
        b.tsv_out(g3, "to0");
        b.tsv_out(g2, "to1");
        b.output(g3, "o");
        b.finish().unwrap()
    }

    #[test]
    fn all_dedicated_plan_applies() {
        let n = die();
        let plan = WrapPlan::all_dedicated(&n);
        let t = apply(&n, &plan).unwrap();
        let stats = t.netlist.stats();
        // 4 dedicated cells (2 in + 2 out).
        assert_eq!(stats.wrapper_cells, 4);
        // Each inbound TSV got a mux.
        assert!(t.netlist.find("wrapmux__ti0").is_some());
        assert!(t.netlist.find("wrapmux__ti1").is_some());
        // Inbound fanout rewired: g1's input is the mux, not ti0.
        let g1 = t.netlist.find("g1").unwrap();
        let mux0 = t.netlist.find("wrapmux__ti0").unwrap();
        assert!(t.netlist.gate(g1).inputs.contains(&mux0));
        // test_en exists and feeds all muxes.
        let te = t.netlist.find("test_en").unwrap();
        assert_eq!(te, t.test_en);
        assert!(t.added_gates() >= 7);
    }

    #[test]
    fn reused_ff_wraps_inbound_and_outbound() {
        let n = die();
        let q = n.find("q").unwrap();
        let plan = WrapPlan {
            assignments: vec![
                WrapAssignment {
                    source: WrapperSource::ReusedScanFf(q),
                    inbound: vec![n.find("ti0").unwrap()],
                    outbound: vec![n.find("to0").unwrap(), n.find("to1").unwrap()],
                },
                WrapAssignment {
                    source: WrapperSource::Dedicated,
                    inbound: vec![n.find("ti1").unwrap()],
                    outbound: vec![],
                },
            ],
        };
        let t = apply(&n, &plan).unwrap();
        // FF D is now the capture mux.
        let q_new = t.netlist.find("q").unwrap();
        let dmux = t.netlist.find("wrapdmux__q").unwrap();
        assert_eq!(t.netlist.gate(q_new).inputs, vec![dmux]);
        // Two outbound taps → one chain XOR + one observation XOR.
        assert!(t.netlist.find("wrapxor__to1").is_some());
        assert!(t.netlist.find("wrapobs__q").is_some());
        // Control-only dedicated cell tied to const0.
        let cell = t.cells[1];
        let c0 = t.netlist.find("wrap_const0").unwrap();
        assert_eq!(t.netlist.gate(cell).inputs, vec![c0]);
        // Reused cell id is the original FF.
        assert_eq!(t.cells[0], q);
    }

    #[test]
    fn invalid_plan_is_rejected() {
        let n = die();
        let plan = WrapPlan::default();
        let err = apply(&n, &plan).unwrap_err().to_string();
        assert!(err.contains("not wrapped"), "{err}");
    }

    #[test]
    fn placement_extension_anchors_new_gates() {
        use prebond3d_place::{place, PlaceConfig};
        let n = die();
        let p = place(&n, &PlaceConfig::default(), 1);
        let plan = WrapPlan::all_dedicated(&n);
        let t = apply(&n, &plan).unwrap();
        let pt = t.placement_for(&p);
        assert_eq!(pt.len(), t.netlist.len());
        // The inbound mux sits exactly at its TSV.
        let ti0 = n.find("ti0").unwrap();
        let mux0 = t.netlist.find("wrapmux__ti0").unwrap();
        assert_eq!(pt.location(mux0).manhattan(&p.location(ti0)).0, 0.0);
        // Original gates keep their spots.
        let g1 = n.find("g1").unwrap();
        assert_eq!(pt.location(g1).manhattan(&p.location(g1)).0, 0.0);
    }

    #[test]
    fn testable_netlist_keeps_original_ids() {
        let n = die();
        let plan = WrapPlan::all_dedicated(&n);
        let t = apply(&n, &plan).unwrap();
        for (id, gate) in n.iter() {
            assert_eq!(t.netlist.gate(id).name, gate.name);
            assert_eq!(t.netlist.gate(id).kind, gate.kind);
        }
    }
}

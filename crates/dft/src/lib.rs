//! # prebond3d-dft
//!
//! Design-for-testability substrate: scan insertion, TSV wrapper-cell
//! hardware (the paper's Fig. 2 and Fig. 3), and testable-netlist
//! generation from a wrapper-assignment plan.
//!
//! The central artifact is the [`WrapPlan`]: for every wrapper cell (a
//! reused scan flip-flop per Fig. 3, or a dedicated cell per Fig. 2) it
//! lists the TSVs the cell serves. [`testable::apply`] materializes the
//! plan into a new netlist with real mux/XOR gates and a `test_en` control
//! input, so that:
//!
//! * the ATPG engine measures fault coverage on the *actual* test-mode
//!   hardware (shared wrapper aliasing and correlation effects included —
//!   the paper's Fig. 4 subtlety), and
//! * the STA engine measures the *actual* functional-path timing impact
//!   of every inserted mux/XOR and reuse wire (Table III's violation
//!   check).
//!
//! # Example
//!
//! ```
//! use prebond3d_netlist::itc99;
//! use prebond3d_dft::{WrapPlan, testable};
//!
//! let spec = itc99::circuit("b11").expect("known circuit");
//! let die = itc99::generate_die(&spec.dies[0]);
//! // Wrap every TSV with its own dedicated wrapper cell (the Fig. 2
//! // baseline).
//! let plan = WrapPlan::all_dedicated(&die);
//! let wrapped = testable::apply(&die, &plan).expect("plan is valid");
//! assert!(wrapped.netlist.stats().wrapper_cells > 0);
//! ```

pub mod prebond;
pub mod scan;
pub mod testable;
pub mod verify;
pub mod wrapper;

pub use prebond::{postbond_access, prebond_access};
pub use scan::{insert_scan, ScanChain};
pub use testable::{apply, TestableDie};
pub use verify::mission_equivalent;
pub use wrapper::{WrapAssignment, WrapPlan, WrapperSource};

//! Pre-bond test access construction for a testable die.

use prebond3d_atpg::TestAccess;

use crate::testable::TestableDie;

/// Build the pre-bond [`TestAccess`] for a wrapped die: full scan access
/// (pads + scan flip-flops + wrapper cells) with `test_en` pinned to 1 so
/// all wrapper muxes select the test path.
///
/// Raw TSV endpoints stay exactly as a pre-bond tester sees them —
/// inbound TSVs float (X sources) and outbound TSVs observe nothing; only
/// the wrapper hardware inserted by [`crate::testable::apply`] restores
/// controllability/observability.
pub fn prebond_access(die: &TestableDie) -> TestAccess {
    let mut access = TestAccess::full_scan(&die.netlist);
    access.pin(die.test_en, true);
    access
}

/// Post-bond test access: after stacking, TSVs are connected — inbound
/// TSVs are driven by the neighbouring die (controllable through its scan
/// resources) and outbound TSVs are observed there. Wrapper muxes switch
/// to the functional path (`test_en = 0`).
///
/// This is the Agrawal-paper extension scenario; comparing coverage under
/// [`prebond_access`] vs [`postbond_access`] quantifies exactly what the
/// wrapper hardware buys before bonding.
pub fn postbond_access(die: &TestableDie) -> TestAccess {
    let netlist = &die.netlist;
    let mut controllable = Vec::new();
    let mut observed = Vec::new();
    for (id, gate) in netlist.iter() {
        match gate.kind {
            prebond3d_netlist::GateKind::Input
            | prebond3d_netlist::GateKind::ScanDff
            | prebond3d_netlist::GateKind::Wrapper
            | prebond3d_netlist::GateKind::TsvIn => controllable.push(id),
            _ => {}
        }
        match gate.kind {
            prebond3d_netlist::GateKind::Output
            | prebond3d_netlist::GateKind::ScanDff
            | prebond3d_netlist::GateKind::Wrapper
            | prebond3d_netlist::GateKind::TsvOut => observed.push(gate.inputs[0]),
            _ => {}
        }
    }
    observed.sort_unstable();
    observed.dedup();
    let mut access = TestAccess::new(netlist, controllable, observed, Vec::new());
    access.pin(die.test_en, false);
    access
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testable::apply;
    use crate::wrapper::WrapPlan;
    use prebond3d_atpg::engine::{run_stuck_at, AtpgConfig};
    use prebond3d_netlist::itc99;

    fn tsv_die() -> prebond3d_netlist::Netlist {
        let spec = itc99::DieSpec {
            name: "die".into(),
            scan_flip_flops: 16,
            gates: 220,
            inbound_tsvs: 10,
            outbound_tsvs: 10,
            primary_inputs: 4,
            primary_outputs: 4,
            seed: 5,
        };
        itc99::generate_die(&spec)
    }

    #[test]
    fn wrapping_restores_coverage() {
        let die = tsv_die();
        // Unwrapped: floating TSVs depress coverage.
        let bare_access = TestAccess::full_scan(&die);
        let bare = run_stuck_at(&die, &bare_access, &AtpgConfig::fast());

        // Fully wrapped: coverage recovers.
        let plan = WrapPlan::all_dedicated(&die);
        let wrapped = apply(&die, &plan).unwrap();
        let access = prebond_access(&wrapped);
        let full = run_stuck_at(&wrapped.netlist, &access, &AtpgConfig::fast());

        assert!(
            full.coverage() > bare.coverage() + 0.03,
            "wrapping must repair pre-bond coverage: bare {:.3} vs wrapped {:.3}",
            bare.coverage(),
            full.coverage()
        );
        // The exact figure depends on the seeded pattern stream; the fast
        // config aborts hard faults early, so "highly testable" means well
        // above the unwrapped die, not a precise value.
        assert!(
            full.test_coverage() > 0.85,
            "wrapped die should be highly testable, got {:.3}",
            full.test_coverage()
        );
    }

    #[test]
    fn postbond_beats_prebond_on_bare_tsv_paths() {
        let die = tsv_die();
        let plan = WrapPlan::all_dedicated(&die);
        let wrapped = apply(&die, &plan).unwrap();
        let pre = run_stuck_at(
            &wrapped.netlist,
            &prebond_access(&wrapped),
            &AtpgConfig::fast(),
        );
        let post = run_stuck_at(
            &wrapped.netlist,
            &postbond_access(&wrapped),
            &AtpgConfig::fast(),
        );
        // Bonded TSVs add controllability/observability the pre-bond
        // tester lacks (e.g. raw TSV stems become testable).
        assert!(
            post.coverage() >= pre.coverage(),
            "post-bond {:.3} vs pre-bond {:.3}",
            post.coverage(),
            pre.coverage()
        );
        assert!(post.untestable <= pre.untestable);
    }

    #[test]
    fn test_en_is_pinned_high() {
        let die = tsv_die();
        let plan = WrapPlan::all_dedicated(&die);
        let wrapped = apply(&die, &plan).unwrap();
        let access = prebond_access(&wrapped);
        assert!(access
            .pinned()
            .iter()
            .any(|&(node, v)| node == wrapped.test_en && v));
        // Wrapper cells are controllable and observed.
        for &cell in &wrapped.cells {
            assert!(access.rank_of(cell).is_some(), "wrapper cell controllable");
        }
    }
}

//! Seeded property sweeps for the pool's determinism contract.
//!
//! Randomized input lengths, chunk sizes and thread counts (driven by the
//! in-tree `prebond3d-rng` so every run sees the same cases) check the
//! three load-bearing properties: parallel output equals serial output in
//! order, every item is processed exactly once, and a panicking worker
//! propagates instead of deadlocking the scope.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use prebond3d_pool::{par_chunks, par_map, par_map_chunked, with_threads};
use prebond3d_rng::StdRng;

#[test]
fn par_map_preserves_order_for_random_shapes() {
    let mut rng = StdRng::seed_from_u64(0x0001_0001);
    for _ in 0..200 {
        let len = rng.gen_range(0..300usize);
        let threads = rng.gen_range(1..9usize);
        let chunk = rng.gen_range(1..40usize);
        let items: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        let expected: Vec<u64> = items.iter().map(|x| x ^ 0xABCD).collect();
        let got = with_threads(threads, || par_map_chunked(&items, chunk, |x| x ^ 0xABCD));
        assert_eq!(
            got, expected,
            "len={len} threads={threads} chunk={chunk}: order or content diverged"
        );
    }
}

#[test]
fn every_item_is_processed_exactly_once() {
    let mut rng = StdRng::seed_from_u64(0x0002_0002);
    for _ in 0..100 {
        let len = rng.gen_range(1..500usize);
        let threads = rng.gen_range(2..9usize);
        let chunk = rng.gen_range(1..64usize);
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        let indices: Vec<usize> = (0..len).collect();
        with_threads(threads, || {
            par_map_chunked(&indices, chunk, |&i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            })
        });
        for (i, h) in hits.iter().enumerate() {
            let n = h.load(Ordering::Relaxed);
            assert_eq!(
                n, 1,
                "item {i} processed {n} times (len={len} threads={threads} chunk={chunk})"
            );
        }
    }
}

#[test]
fn chunk_ranges_partition_the_input() {
    let mut rng = StdRng::seed_from_u64(0x0003_0003);
    for _ in 0..100 {
        let len = rng.gen_range(0..400usize);
        let threads = rng.gen_range(1..9usize);
        let chunk = rng.gen_range(1..50usize);
        let ranges: Vec<std::ops::Range<usize>> =
            with_threads(threads, || par_chunks(len, chunk, || (), |_, range| range));
        // Concatenated in merge order, the ranges must tile [0, len).
        let mut next = 0usize;
        for r in &ranges {
            assert_eq!(r.start, next, "gap or overlap before {r:?}");
            assert!(r.end > r.start, "empty chunk {r:?}");
            assert!(r.end - r.start <= chunk, "oversized chunk {r:?}");
            next = r.end;
        }
        assert_eq!(next, len, "ranges do not cover the input");
    }
}

#[test]
fn panicking_worker_propagates_instead_of_deadlocking() {
    let mut rng = StdRng::seed_from_u64(0x0004_0004);
    for _ in 0..20 {
        let len = rng.gen_range(10..200usize);
        let threads = rng.gen_range(2..9usize);
        let victim = rng.gen_range(0..len);
        let items: Vec<usize> = (0..len).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_threads(threads, || {
                par_map(&items, |&i| {
                    assert!(i != victim, "poisoned item {i}");
                    i
                })
            })
        }));
        let err = result.expect_err("the worker panic must propagate");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("poisoned item"),
            "propagated panic carries the original payload, got {msg:?}"
        );
    }
}

#[test]
fn serial_path_and_parallel_path_agree_on_worker_state_reduction() {
    // par_chunks with stateful workers: each chunk returns (range, sum);
    // the merged result must equal the serial computation regardless of
    // how chunks were distributed across workers.
    let mut rng = StdRng::seed_from_u64(0x0005_0005);
    for _ in 0..100 {
        let len = rng.gen_range(0..600usize);
        let threads = rng.gen_range(1..9usize);
        let chunk = rng.gen_range(1..80usize);
        let data: Vec<u64> = (0..len as u64).map(|i| i * i + 7).collect();
        let run = || {
            par_chunks(
                data.len(),
                chunk,
                || 0u64, // per-worker scratch: counts items seen by this worker
                |seen, range| {
                    *seen += range.len() as u64;
                    data[range].iter().sum::<u64>()
                },
            )
            .into_iter()
            .collect::<Vec<u64>>()
        };
        let serial = with_threads(1, run);
        let parallel = with_threads(threads, run);
        assert_eq!(
            serial, parallel,
            "len={len} threads={threads} chunk={chunk}"
        );
    }
}

//! # prebond3d-pool
//!
//! A small scoped thread pool — std-only, honoring the offline /
//! no-external-deps constraint (DESIGN.md §7) — built around one contract:
//!
//! > **Order-preserving deterministic reduction.** Work is split into
//! > index-contiguous chunks, chunks are claimed by workers in any order,
//! > and results are merged back **in submission (index) order**. The
//! > output of [`par_map`] / [`par_chunks`] is therefore bit-identical to
//! > the serial loop regardless of thread count or OS scheduling.
//!
//! That contract is what lets the Fig. 6 flow — which feeds RNG-seeded
//! annealing and PODEM — run in parallel without perturbing a single
//! result bit; `tests/determinism.rs` at the workspace root locks it down.
//!
//! ## Thread count
//!
//! [`threads`] resolves, in priority order:
//!
//! 1. a thread-local override installed by [`with_threads`] (used by the
//!    equivalence tests so concurrently running test binaries don't race
//!    on global state),
//! 2. the `PREBOND3D_THREADS` environment variable (parsed once),
//! 3. [`std::thread::available_parallelism`].
//!
//! `PREBOND3D_THREADS=1` restores today's exact serial code path: no
//! threads are spawned and closures run inline on the caller.
//!
//! ## Nested parallelism
//!
//! A worker thread that itself calls [`par_map`] (e.g. a bench die worker
//! whose flow reaches the parallel fault simulator) runs the inner call
//! serially — [`threads`] reports `1` inside a worker. This prevents
//! oversubscription; by the determinism contract the results are
//! unchanged either way.
//!
//! ## Panics
//!
//! A panicking worker poisons the pool (surviving workers stop claiming
//! chunks), every thread is joined, and the original panic payload is
//! re-raised on the caller — never a deadlock, never a swallowed panic.

use std::cell::Cell;
use std::ops::Range;

use prebond3d_obs::hist::Hist;
use prebond3d_obs::trace;
use prebond3d_resilience::chaos;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Re-export of [`std::thread::scope`] so callers spawning bespoke
/// structured threads share one import point with the pool.
pub use std::thread::scope;

/// Process-global histogram of worker *idle gaps*: the nanoseconds between
/// a worker finishing one chunk (or entering the claim loop) and starting
/// the next — claim contention plus result-merge lock time.
///
/// Deliberately **outside** the obs registry: chunk counts depend on the
/// thread configuration (`auto_chunk` scales with [`threads`]), so folding
/// this into per-die capture snapshots would break the "byte-identical at
/// any thread count" report contract. The perf harness drains it into the
/// BENCH report's `pool` block instead, where the whole block is zeroed
/// under `PREBOND3D_STABLE_MS`.
static CHUNK_WAIT: Mutex<Hist> = Mutex::new(Hist::new());

/// Snapshot-and-reset the global chunk-wait histogram (perf harness).
pub fn drain_chunk_wait() -> Hist {
    std::mem::take(&mut *CHUNK_WAIT.lock().unwrap())
}

/// Copy of the global chunk-wait histogram without resetting (tests).
pub fn chunk_wait_snapshot() -> Hist {
    CHUNK_WAIT.lock().unwrap().clone()
}

static CONFIGURED: OnceLock<usize> = OnceLock::new();

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Threads the hardware offers ([`std::thread::available_parallelism`],
/// `1` when unknown).
pub fn available() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

fn configured() -> usize {
    *CONFIGURED.get_or_init(|| match std::env::var("PREBOND3D_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!(
                    "[pool] invalid PREBOND3D_THREADS value `{v}` (expected a positive \
                     integer); using available parallelism"
                );
                available()
            }
        },
        Err(_) => available(),
    })
}

/// The thread count parallel regions will use right now.
///
/// Inside a pool worker this is always `1` (nested parallel calls run
/// serially — see the crate docs). Otherwise the [`with_threads`]
/// override wins, then `PREBOND3D_THREADS`, then [`available`].
pub fn threads() -> usize {
    if is_worker() {
        return 1;
    }
    OVERRIDE.with(Cell::get).unwrap_or_else(configured)
}

/// Is the current thread a pool worker?
pub fn is_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Run `f` with [`threads`] forced to `n` on this thread (RAII-restored,
/// nestable). Thread-local on purpose: the serial-vs-parallel equivalence
/// tests run concurrently under `cargo test` and must not race on a
/// process-global knob. `n` is clamped to at least 1.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|o| o.replace(Some(n.max(1))));
    let _restore = Restore(prev);
    f()
}

/// The core primitive: split `0..n` into `chunk`-sized index ranges,
/// process them on [`threads`] workers, and return the per-chunk results
/// **in index order**.
///
/// Each worker owns one scratch state built by `init` (allocated once per
/// worker, not per chunk) — the seam for reusable simulation overlays.
/// With one thread (or when called from inside a worker) everything runs
/// inline on the caller: no spawn, no locking, today's exact code path.
pub fn par_chunks<S, R, I, W>(n: usize, chunk: usize, init: I, work: W) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, Range<usize>) -> R + Sync,
{
    let chunk = chunk.max(1);
    let nchunks = n.div_ceil(chunk);
    if nchunks == 0 {
        return Vec::new();
    }
    let workers = threads().min(nchunks);
    if workers <= 1 {
        let mut state = init();
        return (0..nchunks)
            .map(|c| {
                // Chaos site: a seeded injection run exercises the pool's
                // poison-and-reraise path (and the serial path here).
                chaos::maybe_panic("pool.worker");
                let lo = c * chunk;
                if trace::armed() {
                    let t0 = Instant::now();
                    let r = work(&mut state, lo..(lo + chunk).min(n));
                    trace::complete(
                        "pool",
                        "chunk",
                        t0,
                        t0.elapsed().as_nanos(),
                        Some(("chunk", c.into())),
                    );
                    r
                } else {
                    work(&mut state, lo..(lo + chunk).min(n))
                }
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(nchunks));
    // A budgeted caller (e.g. a serving job running under a per-job
    // `budget_ms`) keeps its budget inside the parallel region: the
    // thread-local override is copied into every worker, so deadlines
    // constructed there expire exactly as they would inline.
    let inherited_budget = prebond3d_resilience::budget::thread_budget();

    std::thread::scope(|s| {
        // RAII worker marker: cleared even when `work` unwinds, so the
        // panic can cross the thread boundary without leaking the flag
        // into any future use of this OS thread.
        struct WorkerMark;
        impl WorkerMark {
            fn enter() -> Self {
                IN_WORKER.with(|w| w.set(true));
                WorkerMark
            }
        }
        impl Drop for WorkerMark {
            fn drop(&mut self) {
                IN_WORKER.with(|w| w.set(false));
            }
        }
        // Poison on unwind so surviving workers stop claiming chunks.
        struct PoisonOnPanic<'a>(&'a AtomicBool);
        impl Drop for PoisonOnPanic<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.store(true, Ordering::Relaxed);
                }
            }
        }

        // One relaxed load up front: arming tracing mid-region would skew
        // a timeline anyway, and per-chunk telemetry must cost nothing
        // when the recorder is off.
        let traced = trace::armed();
        let measured = traced || prebond3d_obs::is_active();
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let next = &next;
                let poisoned = &poisoned;
                let results = &results;
                let init = &init;
                let work = &work;
                s.spawn(move || {
                    let _mark = WorkerMark::enter();
                    let _poison = PoisonOnPanic(poisoned);
                    let _budget =
                        prebond3d_resilience::budget::install_thread_budget(inherited_budget);
                    if traced {
                        // Name the track before the first claim, so every
                        // spawned worker appears in the timeline even when
                        // one fast worker drains all the chunks.
                        trace::set_thread_name(&format!("pool worker {w}"));
                    }
                    let mut state = init();
                    let mut idle_from = measured.then(Instant::now);
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= nchunks || poisoned.load(Ordering::Relaxed) {
                            break;
                        }
                        chaos::maybe_panic("pool.worker");
                        if let Some(idle) = idle_from {
                            let wait_ns = idle.elapsed().as_nanos() as u64;
                            CHUNK_WAIT.lock().unwrap().record(wait_ns);
                        }
                        let lo = c * chunk;
                        let t0 = traced.then(Instant::now);
                        let r = work(&mut state, lo..(lo + chunk).min(n));
                        if let Some(t0) = t0 {
                            trace::complete(
                                "pool",
                                "chunk",
                                t0,
                                t0.elapsed().as_nanos(),
                                Some(("chunk", c.into())),
                            );
                        }
                        results.lock().unwrap().push((c, r));
                        if measured {
                            idle_from = Some(Instant::now());
                        }
                    }
                })
            })
            .collect();
        // Join explicitly so the first panic payload is re-raised on the
        // caller instead of aborting inside the scope's implicit join.
        let mut panic = None;
        for h in handles {
            if let Err(p) = h.join() {
                poisoned.store(true, Ordering::Relaxed);
                panic.get_or_insert(p);
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
    });

    // Submission-order merge: this sort is the determinism contract.
    let mut out = results.into_inner().unwrap();
    out.sort_unstable_by_key(|&(c, _)| c);
    debug_assert!(out.iter().enumerate().all(|(i, &(c, _))| i == c));
    out.into_iter().map(|(_, r)| r).collect()
}

/// Default chunk size: ~8 chunks per worker for decent load balancing
/// without merge overhead.
fn auto_chunk(n: usize) -> usize {
    n.div_ceil(threads().saturating_mul(8).max(1)).max(1)
}

/// Map `f` over `items`, in parallel, preserving input order exactly.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_chunked(items, auto_chunk(items.len()), f)
}

/// [`par_map`] with an explicit chunk size (property tests sweep this).
pub fn par_map_chunked<T, R, F>(items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_chunks(
        items.len(),
        chunk,
        || (),
        |_, range| range.map(|i| f(&items[i])).collect::<Vec<R>>(),
    )
    .into_iter()
    .flatten()
    .collect()
}

/// Map `f` over the index range `0..n`, in parallel, preserving index
/// order (for loops that index shared slices rather than iterate them).
pub fn par_range_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_chunks(
        n,
        auto_chunk(n),
        || (),
        |_, range| range.map(&f).collect::<Vec<R>>(),
    )
    .into_iter()
    .flatten()
    .collect()
}

/// Parallel map followed by a **serial, submission-order fold** — the
/// reduction runs on the caller over results ordered by input index, so
/// non-commutative folds (bitset merges, report sections) stay
/// deterministic.
pub fn par_map_reduce<T, R, A, F, G>(items: &[T], f: F, acc: A, fold: G) -> A
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    G: FnMut(A, R) -> A,
{
    par_map(items, f).into_iter().fold(acc, fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for t in [1, 2, 3, 8] {
            let par = with_threads(t, || par_map(&items, |x| x * 3 + 1));
            assert_eq!(par, serial, "threads={t}");
        }
    }

    #[test]
    fn par_chunks_merges_in_index_order() {
        let ranges = with_threads(4, || par_chunks(10, 3, || (), |_, r| r));
        assert_eq!(ranges, vec![0..3, 3..6, 6..9, 9..10]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = with_threads(4, || par_map(&[] as &[u32], |&x| x));
        assert!(out.is_empty());
        assert!(with_threads(4, || par_range_map(0, |i| i)).is_empty());
    }

    #[test]
    fn worker_state_is_reused_not_rebuilt_per_chunk() {
        let inits = AtomicU64::new(0);
        with_threads(2, || {
            par_chunks(
                100,
                1,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                },
                |_, _| (),
            )
        });
        assert!(inits.load(Ordering::Relaxed) <= 2, "one state per worker");
    }

    #[test]
    fn nested_parallelism_serializes() {
        let inner: Vec<usize> = with_threads(4, || par_range_map(8, |_| threads()));
        assert!(
            inner.iter().all(|&t| t == 1),
            "workers must report 1 thread"
        );
        assert!(!is_worker(), "caller is not a worker after the call");
    }

    #[test]
    fn with_threads_restores_on_unwind() {
        let before = threads();
        let _ = std::panic::catch_unwind(|| with_threads(7, || panic!("boom")));
        assert_eq!(threads(), before);
    }

    #[test]
    fn par_map_reduce_folds_in_order() {
        let items: Vec<u32> = (0..100).collect();
        let folded = with_threads(4, || {
            par_map_reduce(
                &items,
                |&x| x,
                Vec::new(),
                |mut acc, x| {
                    acc.push(x);
                    acc
                },
            )
        });
        assert_eq!(folded, items);
    }
}

//! K-worst-paths enumeration.
//!
//! [`critical_path`](crate::report) traces only the single worst path; DFT
//! decisions benefit from seeing the *population* of near-critical
//! endpoints (e.g. which flip-flops are safe to burden with capture
//! hardware). This module enumerates the K worst endpoint paths by slack
//! and summarizes slack distributions.

use prebond3d_celllib::{Library, Time};
use prebond3d_netlist::{GateId, GateKind, Netlist};
use prebond3d_place::Placement;

use crate::analysis::TimingReport;
use crate::StaConfig;

/// One enumerated endpoint path.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingPath {
    /// Endpoint (sink gate).
    pub endpoint: GateId,
    /// Endpoint slack (required at the sink input minus arrival there).
    pub slack: Time,
    /// Gates from launch point to endpoint.
    pub gates: Vec<GateId>,
}

impl TimingPath {
    /// Combinational path length in gates (excluding endpoints).
    pub fn depth(&self) -> usize {
        self.gates.len().saturating_sub(2)
    }
}

/// Endpoint slack of `sink` in `report` (the same arithmetic the WNS
/// accounting uses).
fn endpoint_slack(
    netlist: &Netlist,
    placement: &Placement,
    library: &Library,
    config: &StaConfig,
    report: &TimingReport,
    sink: GateId,
) -> Option<Time> {
    let gate = netlist.gate(sink);
    let req = match gate.kind {
        GateKind::Dff | GateKind::ScanDff | GateKind::Wrapper => {
            config.clock_period - library.setup
        }
        GateKind::Output | GateKind::TsvOut => config.clock_period - config.output_margin,
        _ => return None,
    };
    let driver = gate.inputs[0];
    let cell = library.timing(gate.kind);
    let arr = report.arrival(driver)
        + library
            .wire()
            .elmore_delay(placement.distance(driver, sink), cell.input_cap);
    Some(req - arr)
}

/// The K worst endpoint paths, ascending by slack.
pub fn k_worst_paths(
    netlist: &Netlist,
    placement: &Placement,
    library: &Library,
    config: &StaConfig,
    report: &TimingReport,
    k: usize,
) -> Vec<TimingPath> {
    let mut endpoints: Vec<(Time, GateId)> = netlist
        .iter()
        .filter_map(|(id, _)| {
            endpoint_slack(netlist, placement, library, config, report, id).map(|s| (s, id))
        })
        .collect();
    endpoints.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite slacks"));
    endpoints
        .into_iter()
        .take(k)
        .map(|(slack, endpoint)| {
            // Trace backwards along the max-arrival input.
            let mut gates = vec![endpoint];
            let mut cursor = endpoint;
            let mut first = true;
            loop {
                let gate = netlist.gate(cursor);
                if gate.inputs.is_empty() || (!first && gate.kind.is_source()) {
                    break;
                }
                first = false;
                let critical = gate
                    .inputs
                    .iter()
                    .copied()
                    .max_by(|&a, &b| {
                        report
                            .arrival(a)
                            .partial_cmp(&report.arrival(b))
                            .expect("finite arrivals")
                    })
                    .expect("non-empty inputs");
                gates.push(critical);
                cursor = critical;
            }
            gates.reverse();
            TimingPath {
                endpoint,
                slack,
                gates,
            }
        })
        .collect()
}

/// A coarse slack histogram over all endpoints: `buckets` equal-width bins
/// between the worst and best endpoint slack. Returns `(bin_edges,
/// counts)`.
pub fn slack_histogram(
    netlist: &Netlist,
    placement: &Placement,
    library: &Library,
    config: &StaConfig,
    report: &TimingReport,
    buckets: usize,
) -> (Vec<Time>, Vec<usize>) {
    let slacks: Vec<Time> = netlist
        .iter()
        .filter_map(|(id, _)| endpoint_slack(netlist, placement, library, config, report, id))
        .collect();
    if slacks.is_empty() || buckets == 0 {
        return (Vec::new(), Vec::new());
    }
    let min = slacks.iter().copied().fold(Time(f64::INFINITY), Time::min);
    let max = slacks
        .iter()
        .copied()
        .fold(Time(f64::NEG_INFINITY), Time::max);
    let width = ((max - min).0 / buckets as f64).max(1e-9);
    let mut counts = vec![0usize; buckets];
    for s in &slacks {
        let b = (((s.0 - min.0) / width) as usize).min(buckets - 1);
        counts[b] += 1;
    }
    let edges = (0..=buckets)
        .map(|i| Time(min.0 + width * i as f64))
        .collect();
    (edges, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use prebond3d_netlist::itc99;
    use prebond3d_place::{place, PlaceConfig};

    fn rig() -> (Netlist, Placement, Library, StaConfig, TimingReport) {
        let die = itc99::generate_flat("d", 250, 18, 6, 6, 5);
        let placement = place(&die, &PlaceConfig::default(), 1);
        let lib = Library::nangate45_like();
        let config = StaConfig::with_period(Time(900.0));
        let report = analyze(&die, &placement, &lib, &config);
        (die, placement, lib, config, report)
    }

    #[test]
    fn worst_path_matches_wns() {
        let (die, placement, lib, config, report) = rig();
        let paths = k_worst_paths(&die, &placement, &lib, &config, &report, 5);
        assert_eq!(paths.len(), 5);
        assert!((paths[0].slack - report.wns).0.abs() < 1e-9);
        assert_eq!(Some(paths[0].endpoint), report.worst_endpoint);
        // Ascending by slack.
        for w in paths.windows(2) {
            assert!(w[0].slack <= w[1].slack);
        }
        // Paths start at a launch point and end at their endpoint.
        for p in &paths {
            assert_eq!(*p.gates.last().unwrap(), p.endpoint);
            assert!(p.gates.len() >= 2);
        }
    }

    #[test]
    fn histogram_covers_all_endpoints() {
        let (die, placement, lib, config, report) = rig();
        let (edges, counts) = slack_histogram(&die, &placement, &lib, &config, &report, 8);
        assert_eq!(edges.len(), 9);
        let endpoints = die.iter().filter(|(_, g)| g.kind.is_sink()).count();
        assert_eq!(counts.iter().sum::<usize>(), endpoints);
    }

    #[test]
    fn k_larger_than_endpoints_is_fine() {
        let (die, placement, lib, config, report) = rig();
        let paths = k_worst_paths(&die, &placement, &lib, &config, &report, 100_000);
        let endpoints = die.iter().filter(|(_, g)| g.kind.is_sink()).count();
        assert_eq!(paths.len(), endpoints);
    }
}

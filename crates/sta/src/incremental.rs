//! Incremental *frontier* STA: keep arrival/required arrays live and, on a
//! what-if extra-load edit, recompute only the affected frontier.
//!
//! # Why
//!
//! Algorithm 1 of the paper prices hundreds of candidate scan-flip-flop
//! reuse taps per die. Each candidate adds one mux/XOR pin plus a stub
//! wire — a *single-net* capacitance edit — yet pricing it with
//! [`crate::analyze`] recomputes loads, arrivals and requireds for every
//! node in the die ("full retime", `3·n` node visits). This module keeps
//! a [`StaAnalysis`] alive across queries and retimes only the nodes whose
//! times can actually change.
//!
//! # Exactness contract
//!
//! [`StaAnalysis`] is **not** an approximation. For any sequence of
//! [`StaAnalysis::set_extra_load`] edits, [`StaAnalysis::report`] is
//! bitwise-identical (every `f64` compares `==`) to
//! [`crate::analysis::analyze_with_extra_loads`] run from scratch with the
//! same extras — that function is the reference oracle and the test suite
//! asserts `assert_eq!` between the two. The contract holds because the
//! frontier recompute replays the *same* floating-point expressions as the
//! full passes:
//!
//! * **Forward**: a min-heap ordered by topological rank pops each dirty
//!   node after all of its dirty fanins; the node's arrival is recomputed
//!   with the oracle's exact `max`-over-arcs loop (same input order). If
//!   the recomputed value equals the stored one the walk stops there —
//!   times downstream cannot change.
//! * **Backward**: required times are recomputed *pull*-style — the
//!   oracle's seed pass plus reverse-topological push pass are re-expressed
//!   as a per-node min over (a) the node's own sink constraint, (b) seeds
//!   through final wire arcs from sink fanouts it drives, and (c)
//!   contributions from non-sink combinational fanouts. `min` over the
//!   identical value set is order-independent and exact, so pulling equals
//!   pushing bit-for-bit. A max-heap by rank pops each dirty node after
//!   all of its dirty fanouts.
//! * The `required == +inf → required = arrival` relaxation the oracle
//!   applies to unconstrained nodes is *not* baked into the stored array
//!   (that would destroy the sentinel the backward pass needs); it is
//!   applied at read time ([`StaAnalysis::required`] / report
//!   materialization).
//! * WNS/TNS need every endpoint, so [`StaAnalysis::report`] re-runs the
//!   oracle's endpoint scan in the same `netlist.iter()` order (the TNS
//!   sum order matters for f64 equality). The scan reads live arrays only
//!   — no node is retimed.
//!
//! Each frontier node recompute increments the `sta.node_retimes` counter;
//! the bench probe compares it against the `3·n·queries` visits the full
//! oracle pays for the same what-if sweep.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use prebond3d_celllib::{Capacitance, Library, Time};
use prebond3d_netlist::{traverse, GateId, GateKind, Netlist};
use prebond3d_obs as obs;
use prebond3d_place::Placement;

use crate::analysis::{launch_time, sink_required, TimingReport};
use crate::StaConfig;

/// `true` for kinds the oracle's backward pass never propagates *from*:
/// sequential sinks (next-cycle required must not leak onto the D pin) and
/// pure output markers (fully handled by the seeding pass).
fn backward_skip(kind: GateKind) -> bool {
    kind.is_sequential() || matches!(kind, GateKind::Output | GateKind::TsvOut)
}

/// A live timing analysis supporting exact what-if extra-load edits.
///
/// Build once with [`StaAnalysis::new`] (one full analysis), then edit
/// with [`StaAnalysis::set_extra_load`] — each edit retimes only the
/// frontier of nodes whose arrival or required time can change, and the
/// live state stays bitwise-equal to a from-scratch
/// [`crate::analysis::analyze_with_extra_loads`].
pub struct StaAnalysis<'a> {
    netlist: &'a Netlist,
    placement: &'a Placement,
    library: &'a Library,
    config: StaConfig,
    is_static: Vec<bool>,
    /// Topological order (identical to the oracle's forward order).
    order: Vec<GateId>,
    /// `rank[id.index()]` = position of `id` in [`Self::order`].
    rank: Vec<u32>,
    base_load: Vec<Capacitance>,
    extra: Vec<Capacitance>,
    load: Vec<Capacitance>,
    arrival: Vec<Time>,
    /// Required times with the oracle's `+inf` sentinel still in place for
    /// unconstrained nodes; the `required = arrival` relaxation is applied
    /// at read time.
    required_raw: Vec<Time>,
    last_retimes: u64,
    total_retimes: u64,
}

impl<'a> StaAnalysis<'a> {
    /// Full analysis of `netlist`; equivalent to
    /// [`crate::analysis::analyze_with_statics`] but keeping the state
    /// live for incremental edits.
    pub fn new(
        netlist: &'a Netlist,
        placement: &'a Placement,
        library: &'a Library,
        config: &StaConfig,
        statics: &[GateId],
    ) -> StaAnalysis<'a> {
        let _span = obs::span("sta_incremental_build");
        let n = netlist.len();
        assert_eq!(placement.len(), n, "placement must cover the netlist");
        obs::count("sta.runs", 1);
        obs::count("sta.nodes_visited", 3 * n as u64);
        let wire = library.wire();

        let pin_cap: Vec<Capacitance> = netlist
            .iter()
            .map(|(_, gate)| library.timing(gate.kind).input_cap)
            .collect();
        let mut base_load = vec![Capacitance::ZERO; n];
        for (id, _) in netlist.iter() {
            let mut total = Capacitance::ZERO;
            for &fo in netlist.fanout(id) {
                total += pin_cap[fo.index()];
                total += wire.driver_load(placement.distance(id, fo));
            }
            base_load[id.index()] = total;
        }

        let mut is_static = vec![false; n];
        for &id in statics {
            is_static[id.index()] = true;
        }

        let order = traverse::combinational_order(netlist);
        let mut rank = vec![0u32; n];
        for (r, &id) in order.iter().enumerate() {
            rank[id.index()] = r as u32;
        }

        let mut this = StaAnalysis {
            netlist,
            placement,
            library,
            config: *config,
            is_static,
            order,
            rank,
            load: base_load.clone(),
            base_load,
            extra: vec![Capacitance::ZERO; n],
            arrival: vec![Time(0.0); n],
            required_raw: vec![Time(f64::INFINITY); n],
            last_retimes: 0,
            total_retimes: 0,
        };

        // Forward pass: same per-node expression as the oracle, evaluated
        // in the same topological order.
        for r in 0..n {
            let id = this.order[r];
            this.arrival[id.index()] = this.compute_arrival(id);
        }
        // Backward pass, pull-style: visiting in reverse topological order
        // guarantees every combinational fanout is final when pulled.
        for r in (0..n).rev() {
            let id = this.order[r];
            this.required_raw[id.index()] = this.compute_required_raw(id);
        }
        this
    }

    /// Number of gates under analysis.
    pub fn len(&self) -> usize {
        self.arrival.len()
    }

    /// `true` for an empty netlist.
    pub fn is_empty(&self) -> bool {
        self.arrival.is_empty()
    }

    /// Frontier node recomputes performed by the most recent
    /// [`Self::set_extra_load`] call.
    pub fn last_retimes(&self) -> u64 {
        self.last_retimes
    }

    /// Frontier node recomputes performed since construction.
    pub fn total_retimes(&self) -> u64 {
        self.total_retimes
    }

    /// Current extra load applied to `id`'s output net.
    pub fn extra_load(&self, id: GateId) -> Capacitance {
        self.extra[id.index()]
    }

    /// Arrival time at the output of `id`.
    pub fn arrival(&self, id: GateId) -> Time {
        self.arrival[id.index()]
    }

    /// Required time at the output of `id` (unconstrained nodes read as
    /// their arrival, exactly like the oracle's relaxation).
    pub fn required(&self, id: GateId) -> Time {
        let raw = self.required_raw[id.index()];
        if raw == Time(f64::INFINITY) {
            self.arrival[id.index()]
        } else {
            raw
        }
    }

    /// Slack at the output of `id`.
    pub fn slack(&self, id: GateId) -> Time {
        self.required(id) - self.arrival(id)
    }

    /// Capacitive load currently driven by `id` (structural + extra).
    pub fn load(&self, id: GateId) -> Capacitance {
        self.load[id.index()]
    }

    /// Set the what-if extra load on `id`'s output net to `c` (replacing
    /// any previous extra on that net) and retime the affected frontier.
    ///
    /// Passing [`Capacitance::ZERO`] reverts the net to its structural
    /// load. Extras on *different* nets compose: the live state always
    /// equals the oracle run with the full set of non-zero extras.
    pub fn set_extra_load(&mut self, id: GateId, c: Capacitance) {
        let d = id.index();
        self.extra[d] = c;
        // Single addition onto the structural load — the same expression
        // the oracle uses, so clearing (c = 0) restores the original
        // load bit-for-bit.
        self.load[d] = self.base_load[d] + c;
        let mut retimes = 0u64;

        // --- Forward frontier -----------------------------------------
        // Min-heap by rank: a dirty node pops only after every dirty
        // fanin has been recomputed. Ranks are unique, so duplicate heap
        // entries for one node pop adjacently and dedup against `last`.
        let mut heap: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
        heap.push(Reverse(self.rank[d]));
        let mut last: Option<u32> = None;
        while let Some(Reverse(r)) = heap.pop() {
            if last == Some(r) {
                continue;
            }
            last = Some(r);
            let x = self.order[r as usize];
            let xi = x.index();
            retimes += 1;
            let new_at = self.compute_arrival(x);
            if new_at == self.arrival[xi] {
                // Bitwise-unchanged: nothing downstream can move.
                continue;
            }
            self.arrival[xi] = new_at;
            for &fo in self.netlist.fanout(x) {
                let kind = self.netlist.gate(fo).kind;
                // Sources ignore fanin arrivals; statics are pinned.
                if kind.is_source() || self.is_static[fo.index()] {
                    continue;
                }
                heap.push(Reverse(self.rank[fo.index()]));
            }
        }

        // --- Backward frontier ----------------------------------------
        // `load[d]` enters required times only through d's own backward
        // cell delay, which exists only when d is a combinational
        // non-sink: sources have zero backward cell delay and skip-set
        // kinds never propagate to their fanins.
        let gate = self.netlist.gate(id);
        if !backward_skip(gate.kind) && !gate.kind.is_source() {
            // Max-heap by rank: a dirty node pops only after every dirty
            // (combinational, hence higher-ranked) fanout.
            let mut heap: BinaryHeap<u32> = BinaryHeap::new();
            for &input in &gate.inputs {
                heap.push(self.rank[input.index()]);
            }
            let mut last: Option<u32> = None;
            while let Some(r) = heap.pop() {
                if last == Some(r) {
                    continue;
                }
                last = Some(r);
                let x = self.order[r as usize];
                let xi = x.index();
                retimes += 1;
                let new_req = self.compute_required_raw(x);
                if new_req == self.required_raw[xi] {
                    continue;
                }
                self.required_raw[xi] = new_req;
                let xg = self.netlist.gate(x);
                if backward_skip(xg.kind) {
                    continue;
                }
                for &input in &xg.inputs {
                    heap.push(self.rank[input.index()]);
                }
            }
        }

        self.last_retimes = retimes;
        self.total_retimes += retimes;
        obs::count("sta.node_retimes", retimes);
    }

    /// Revert every what-if extra load, restoring the plain analysis.
    pub fn clear_extra_loads(&mut self) {
        let dirty: Vec<GateId> = self
            .netlist
            .iter()
            .map(|(id, _)| id)
            .filter(|id| self.extra[id.index()] != Capacitance::ZERO)
            .collect();
        for id in dirty {
            self.set_extra_load(id, Capacitance::ZERO);
        }
    }

    /// Materialize the live state into a [`TimingReport`] — including the
    /// WNS/TNS endpoint scan, replayed in the oracle's iteration order so
    /// the TNS f64 sum is bitwise-identical.
    pub fn report(&self) -> TimingReport {
        let big = Time(f64::INFINITY);
        let required: Vec<Time> = (0..self.arrival.len())
            .map(|i| {
                if self.required_raw[i] == big {
                    self.arrival[i]
                } else {
                    self.required_raw[i]
                }
            })
            .collect();
        let (wns, tns, worst) = self.endpoint_scan();
        TimingReport::from_parts(
            self.arrival.clone(),
            required,
            self.load.clone(),
            wns,
            tns,
            worst,
            self.config.clock_period,
        )
    }

    /// Worst negative slack over the live state (no retiming).
    pub fn wns(&self) -> Time {
        self.endpoint_scan().0
    }

    /// Total negative slack over the live state (no retiming).
    pub fn tns(&self) -> Time {
        self.endpoint_scan().1
    }

    /// The oracle's arrival expression for one node, over live state.
    fn compute_arrival(&self, id: GateId) -> Time {
        let gate = self.netlist.gate(id);
        let cell = self.library.timing(gate.kind);
        let wire = self.library.wire();
        if self.is_static[id.index()] {
            return Time(f64::NEG_INFINITY);
        }
        if gate.kind.is_source() {
            return launch_time(gate.kind, self.library, &self.config)
                + cell.drive_resistance * self.load[id.index()];
        }
        let mut at = Time(0.0);
        for &input in &gate.inputs {
            let wire_d = wire.elmore_delay(self.placement.distance(input, id), cell.input_cap);
            at = at.max(self.arrival[input.index()] + wire_d);
        }
        let cell_delay = match gate.kind {
            GateKind::Output | GateKind::TsvOut => Time(0.0),
            _ => cell.intrinsic + cell.drive_resistance * self.load[id.index()],
        };
        at + cell_delay
    }

    /// Pull-style required time for one node: the min over exactly the
    /// contributions the oracle's seed + push passes would deposit here.
    /// `+inf` when unconstrained (the sentinel, not the relaxed value).
    fn compute_required_raw(&self, id: GateId) -> Time {
        let big = Time(f64::INFINITY);
        let wire = self.library.wire();
        let mut req = big;
        // (a) The node's own sink constraint, for reporting.
        if let Some(r) = sink_required(self.netlist.gate(id).kind, self.library, &self.config) {
            req = req.min(r);
        }
        for &fo in self.netlist.fanout(id) {
            let fog = self.netlist.gate(fo);
            let cell = self.library.timing(fog.kind);
            let wire_d = wire.elmore_delay(self.placement.distance(id, fo), cell.input_cap);
            // (b) Seed through the final wire arc of a sink this node
            // drives (the oracle seeds only via `inputs[0]`).
            if let Some(r) = sink_required(fog.kind, self.library, &self.config) {
                if fog.inputs.first() == Some(&id) {
                    req = req.min(r - wire_d);
                }
            }
            // (c) Push from a combinational non-sink fanout.
            if backward_skip(fog.kind) {
                continue;
            }
            let fo_req = self.required_raw[fo.index()];
            if fo_req == big {
                continue;
            }
            let cell_delay = if fog.kind.is_source() {
                Time(0.0)
            } else {
                cell.intrinsic + cell.drive_resistance * self.load[fo.index()]
            };
            req = req.min(fo_req - cell_delay - wire_d);
        }
        req
    }

    /// The oracle's endpoint slack scan over live arrays.
    fn endpoint_scan(&self) -> (Time, Time, Option<GateId>) {
        let wire = self.library.wire();
        let mut wns = Time(f64::INFINITY);
        let mut tns = Time(0.0);
        let mut worst = None;
        let mut any_endpoint = false;
        for (id, gate) in self.netlist.iter() {
            let Some(req) = sink_required(gate.kind, self.library, &self.config) else {
                continue;
            };
            any_endpoint = true;
            let cell = self.library.timing(gate.kind);
            let driver = gate.inputs[0];
            let arr_in = self.arrival[driver.index()]
                + wire.elmore_delay(self.placement.distance(driver, id), cell.input_cap);
            let s = req - arr_in;
            if s < wns {
                wns = s;
                worst = Some(id);
            }
            if s.0 < 0.0 {
                tns += s;
            }
        }
        if !any_endpoint {
            wns = Time(0.0);
        }
        (wns, tns, worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, analyze_with_extra_loads, analyze_with_statics};
    use prebond3d_netlist::itc99;
    use prebond3d_place::{place, PlaceConfig};
    use prebond3d_rng::StdRng;

    fn setup(gates: usize) -> (Netlist, Placement, Library) {
        let die = itc99::generate_flat("d", gates, 16, 6, 6, 5);
        let placement = place(&die, &PlaceConfig::default(), 1);
        (die, placement, Library::nangate45_like())
    }

    #[test]
    fn build_matches_full_analyze_bitwise() {
        let (die, placement, lib) = setup(300);
        let config = StaConfig::with_period(Time(800.0));
        let inc = StaAnalysis::new(&die, &placement, &lib, &config, &[]);
        assert_eq!(inc.report(), analyze(&die, &placement, &lib, &config));
    }

    #[test]
    fn build_with_statics_matches_oracle() {
        let (die, placement, lib) = setup(250);
        let config = StaConfig::with_period(Time(700.0));
        let statics: Vec<GateId> = die
            .iter()
            .filter(|(_, g)| g.kind == GateKind::Input)
            .map(|(id, _)| id)
            .take(2)
            .collect();
        let inc = StaAnalysis::new(&die, &placement, &lib, &config, &statics);
        assert_eq!(
            inc.report(),
            analyze_with_statics(&die, &placement, &lib, &config, &statics)
        );
    }

    #[test]
    fn what_if_edits_match_oracle_exactly_and_retime_a_strict_frontier() {
        let (die, placement, lib) = setup(400);
        let config = StaConfig::with_period(Time(750.0));
        let mut inc = StaAnalysis::new(&die, &placement, &lib, &config, &[]);
        let mut rng = StdRng::seed_from_u64(0xF00D);
        let n = die.len();
        for _ in 0..12 {
            let target = GateId(rng.gen_range(0..n as u32));
            let c = Capacitance(rng.gen_range(1u32..40) as f64 / 4.0);
            inc.set_extra_load(target, c);
            assert_eq!(
                inc.report(),
                analyze_with_extra_loads(&die, &placement, &lib, &config, &[], &[(target, c)]),
                "live state diverged from oracle at extra {c} on {target:?}"
            );
            assert!(
                inc.last_retimes() < n as u64,
                "frontier retimed {} nodes, full pass visits {}",
                inc.last_retimes(),
                n
            );
            inc.set_extra_load(target, Capacitance::ZERO);
        }
    }

    #[test]
    fn extras_on_distinct_nets_compose() {
        let (die, placement, lib) = setup(300);
        let config = StaConfig::with_period(Time(800.0));
        let mut inc = StaAnalysis::new(&die, &placement, &lib, &config, &[]);
        let a = GateId(17);
        let b = GateId(163);
        inc.set_extra_load(a, Capacitance(6.5));
        inc.set_extra_load(b, Capacitance(2.25));
        assert_eq!(
            inc.report(),
            analyze_with_extra_loads(
                &die,
                &placement,
                &lib,
                &config,
                &[],
                &[(a, Capacitance(6.5)), (b, Capacitance(2.25))],
            )
        );
    }

    #[test]
    fn clearing_extras_restores_the_plain_analysis() {
        let (die, placement, lib) = setup(300);
        let config = StaConfig::with_period(Time(800.0));
        let mut inc = StaAnalysis::new(&die, &placement, &lib, &config, &[]);
        let baseline = inc.report();
        inc.set_extra_load(GateId(11), Capacitance(9.0));
        inc.set_extra_load(GateId(42), Capacitance(3.5));
        assert!(inc.extra_load(GateId(11)) != Capacitance::ZERO);
        inc.clear_extra_loads();
        assert_eq!(inc.report(), baseline);
        assert_eq!(inc.report(), analyze(&die, &placement, &lib, &config));
    }

    #[test]
    fn slack_accessors_agree_with_report() {
        let (die, placement, lib) = setup(200);
        let config = StaConfig::with_period(Time(800.0));
        let mut inc = StaAnalysis::new(&die, &placement, &lib, &config, &[]);
        inc.set_extra_load(GateId(5), Capacitance(12.0));
        let report = inc.report();
        for (id, _) in die.iter() {
            assert_eq!(inc.arrival(id), report.arrival(id));
            assert_eq!(inc.required(id), report.required(id));
            assert_eq!(inc.slack(id), report.slack(id));
            assert_eq!(inc.load(id), report.load(id));
        }
        assert_eq!(inc.wns(), report.wns);
        assert_eq!(inc.tns(), report.tns);
    }
}

//! Human-readable critical-path reporting.

use prebond3d_celllib::Library;
use prebond3d_netlist::{GateId, Netlist};

use crate::analysis::TimingReport;

/// Trace the critical path backwards from the worst endpoint.
///
/// Returns the path source-first; empty when the design has no endpoints.
pub fn critical_path(netlist: &Netlist, report: &TimingReport) -> Vec<GateId> {
    let Some(mut cursor) = report.worst_endpoint else {
        return Vec::new();
    };
    let mut path = vec![cursor];
    let mut first = true;
    loop {
        let gate = netlist.gate(cursor);
        // The endpoint itself may be a flip-flop (walk through its D pin);
        // any later source (PI, FF output) terminates the path.
        if gate.inputs.is_empty() || (!first && gate.kind.is_source()) {
            break;
        }
        first = false;
        // The critical input is the one with the latest arrival.
        let critical = gate
            .inputs
            .iter()
            .copied()
            .max_by(|&a, &b| {
                report
                    .arrival(a)
                    .partial_cmp(&report.arrival(b))
                    .expect("arrival times are finite")
            })
            .expect("non-empty inputs");
        path.push(critical);
        cursor = critical;
    }
    path.reverse();
    path
}

/// A PrimeTime-style text rendering of the critical path.
pub fn critical_path_text(netlist: &Netlist, report: &TimingReport, library: &Library) -> String {
    use std::fmt::Write as _;
    let path = critical_path(netlist, report);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "critical path of `{}` (clock {}, wns {}):",
        netlist.name(),
        report.clock_period(),
        report.wns
    );
    for id in path {
        let gate = netlist.gate(id);
        let _ = writeln!(
            out,
            "  {:<28} {:<8} arrival {:>10}  slack {:>10}  load {:>9}",
            gate.name,
            gate.kind.mnemonic(),
            report.arrival(id).to_string(),
            report.slack(id).to_string(),
            report.load(id).to_string(),
        );
    }
    let _ = library; // reserved for per-arc decomposition extensions
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, StaConfig};
    use prebond3d_celllib::Time;
    use prebond3d_netlist::itc99;
    use prebond3d_place::{place, PlaceConfig};

    #[test]
    fn path_runs_source_to_endpoint() {
        let die = itc99::generate_flat("d", 250, 16, 6, 6, 5);
        let p = place(&die, &PlaceConfig::default(), 1);
        let lib = prebond3d_celllib::Library::nangate45_like();
        let r = analyze(&die, &p, &lib, &StaConfig::with_period(Time(900.0)));
        let path = critical_path(&die, &r);
        assert!(!path.is_empty());
        assert!(die.gate(*path.first().unwrap()).kind.is_source());
        assert_eq!(Some(*path.last().unwrap()), r.worst_endpoint);
        // Arrival is monotone along the combinational portion of the path
        // (a sequential endpoint reports its Q-side launch time, which is
        // unrelated to the D-side path arrival).
        for w in path.windows(2) {
            if die.gate(w[1]).kind.is_sequential() {
                continue;
            }
            assert!(r.arrival(w[0]) <= r.arrival(w[1]));
        }
        let text = critical_path_text(&die, &r, &lib);
        assert!(text.contains("critical path"));
        assert!(text.lines().count() >= path.len());
    }
}

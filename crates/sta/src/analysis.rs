//! Arrival/required/slack propagation.

use prebond3d_celllib::{Capacitance, Library, Time};
use prebond3d_netlist::{traverse, GateId, GateKind, Netlist};
use prebond3d_obs as obs;
use prebond3d_place::Placement;

use crate::StaConfig;

/// The result of a full timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    arrival: Vec<Time>,
    required: Vec<Time>,
    load: Vec<Capacitance>,
    /// Worst (minimum) slack across all constrained endpoints.
    pub wns: Time,
    /// Sum of negative endpoint slacks (0 when timing is met).
    pub tns: Time,
    /// The endpoint with the worst slack.
    pub worst_endpoint: Option<GateId>,
    clock_period: Time,
}

impl TimingReport {
    /// Arrival time at the output of `id`.
    pub fn arrival(&self, id: GateId) -> Time {
        self.arrival[id.index()]
    }

    /// Required time at the output of `id`.
    pub fn required(&self, id: GateId) -> Time {
        self.required[id.index()]
    }

    /// Slack at the output of `id` (`required − arrival`).
    pub fn slack(&self, id: GateId) -> Time {
        self.required[id.index()] - self.arrival[id.index()]
    }

    /// Capacitive load driven by the output of `id` (pin + wire caps).
    pub fn load(&self, id: GateId) -> Capacitance {
        self.load[id.index()]
    }

    /// The analyzed clock period.
    pub fn clock_period(&self) -> Time {
        self.clock_period
    }

    /// `true` when any constrained endpoint misses timing.
    pub fn has_violation(&self) -> bool {
        self.wns.0 < 0.0
    }

    /// Number of analyzed gates.
    pub fn len(&self) -> usize {
        self.arrival.len()
    }

    /// `true` for an empty analysis.
    pub fn is_empty(&self) -> bool {
        self.arrival.is_empty()
    }

    /// Assemble a report from already-computed vectors. Used by the
    /// incremental engine ([`crate::incremental`]) to materialize its live
    /// state into the same comparable (`PartialEq`) type this module
    /// produces.
    pub(crate) fn from_parts(
        arrival: Vec<Time>,
        required: Vec<Time>,
        load: Vec<Capacitance>,
        wns: Time,
        tns: Time,
        worst_endpoint: Option<GateId>,
        clock_period: Time,
    ) -> TimingReport {
        TimingReport {
            arrival,
            required,
            load,
            wns,
            tns,
            worst_endpoint,
            clock_period,
        }
    }
}

/// Launch time of a source node.
pub(crate) fn launch_time(kind: GateKind, library: &Library, config: &StaConfig) -> Time {
    match kind {
        GateKind::Dff | GateKind::ScanDff | GateKind::Wrapper => library.clk_to_q,
        GateKind::Input | GateKind::TsvIn => config.input_arrival,
        _ => Time(0.0),
    }
}

/// Required time at a sink node's *input*.
pub(crate) fn sink_required(kind: GateKind, library: &Library, config: &StaConfig) -> Option<Time> {
    match kind {
        GateKind::Dff | GateKind::ScanDff | GateKind::Wrapper => {
            Some(config.clock_period - library.setup)
        }
        GateKind::Output | GateKind::TsvOut => Some(config.clock_period - config.output_margin),
        _ => None,
    }
}

/// Full static timing analysis of `netlist` at `config`'s constraints.
///
/// Delay model per combinational arc `driver → gate`:
///
/// `arc = wire_elmore(distance, pin_cap) + cell_delay(gate, load(gate))`
///
/// where `load(gate)` is the sum of `gate`'s fanout pin caps plus the wire
/// cap of each fanout segment (star topology from the placement).
pub fn analyze(
    netlist: &Netlist,
    placement: &Placement,
    library: &Library,
    config: &StaConfig,
) -> TimingReport {
    analyze_with_statics(netlist, placement, library, config, &[])
}

/// [`analyze`] with *case analysis*: nodes in `statics` are declared
/// static (e.g. a `test_en` control held constant in each mode), so the
/// timing arcs they launch never constrain a path — exactly PrimeTime's
/// `set_case_analysis` behaviour on DFT control signals.
pub fn analyze_with_statics(
    netlist: &Netlist,
    placement: &Placement,
    library: &Library,
    config: &StaConfig,
    statics: &[GateId],
) -> TimingReport {
    analyze_with_extra_loads(netlist, placement, library, config, statics, &[])
}

/// [`analyze_with_statics`] with *what-if* extra capacitive loads: each
/// `(id, c)` entry adds `c` to the structural load of `id`'s output net
/// before any delay is computed, modelling a candidate DFT tap (mux/XOR
/// pin plus stub wire) without editing the netlist.
///
/// This is the reference oracle for the incremental engine in
/// [`crate::incremental`]: `StaAnalysis::set_extra_load` must produce
/// exactly (bitwise on every `f64`) the report this function produces for
/// the same extras.
pub fn analyze_with_extra_loads(
    netlist: &Netlist,
    placement: &Placement,
    library: &Library,
    config: &StaConfig,
    statics: &[GateId],
    extra: &[(GateId, Capacitance)],
) -> TimingReport {
    let _span = obs::span("sta_analyze");
    let n = netlist.len();
    assert_eq!(placement.len(), n, "placement must cover the netlist");
    obs::count("sta.runs", 1);
    // Loads + forward + backward each touch every node once.
    obs::count("sta.nodes_visited", 3 * n as u64);
    let wire = library.wire();

    // --- Loads ----------------------------------------------------------
    // Pin caps are prefetched per node so the per-arc loop below (arcs
    // outnumber nodes) is a flat vector read instead of a gate + library
    // lookup per fanout edge.
    let pin_cap: Vec<Capacitance> = netlist
        .iter()
        .map(|(_, gate)| library.timing(gate.kind).input_cap)
        .collect();
    let mut load = vec![Capacitance::ZERO; n];
    for (id, _) in netlist.iter() {
        let mut total = Capacitance::ZERO;
        for &fo in netlist.fanout(id) {
            total += pin_cap[fo.index()];
            // Long segments are buffered by the implementation flow, so
            // the driver sees at most one buffer interval of wire cap.
            total += wire.driver_load(placement.distance(id, fo));
        }
        load[id.index()] = total;
    }
    for &(id, c) in extra {
        load[id.index()] += c;
    }

    let mut is_static = vec![false; n];
    for &id in statics {
        is_static[id.index()] = true;
    }

    // --- Arrival (forward) ----------------------------------------------
    let order = traverse::combinational_order(netlist);
    let mut arrival = vec![Time(0.0); n];
    for &id in &order {
        let gate = netlist.gate(id);
        let cell = library.timing(gate.kind);
        if is_static[id.index()] {
            // Case-analysis constant: never the critical contributor.
            arrival[id.index()] = Time(f64::NEG_INFINITY);
            continue;
        }
        if gate.kind.is_source() {
            // Launch + the source's own drive delay into its load.
            arrival[id.index()] =
                launch_time(gate.kind, library, config) + cell.drive_resistance * load[id.index()];
            continue;
        }
        // Max over input arcs: driver arrival + wire to this pin.
        let mut at = Time(0.0);
        for &input in &gate.inputs {
            let wire_d = wire.elmore_delay(placement.distance(input, id), cell.input_cap);
            at = at.max(arrival[input.index()] + wire_d);
        }
        // Pure sinks (Output/TsvOut markers) add no cell delay beyond the
        // arc; logic gates add intrinsic + drive into their load.
        let cell_delay = match gate.kind {
            GateKind::Output | GateKind::TsvOut => Time(0.0),
            _ => cell.intrinsic + cell.drive_resistance * load[id.index()],
        };
        arrival[id.index()] = at + cell_delay;
    }

    // --- Required (backward) ---------------------------------------------
    // Sink constraints are seeded onto the sink pins' *drivers* first:
    // sequential sinks sit early in the topological order (their Q is a
    // source), so waiting for their reverse-order visit would propagate
    // the setup constraint only after the D-cone has already been
    // processed.
    let big = Time(f64::INFINITY);
    let mut required = vec![big; n];
    for (id, gate) in netlist.iter() {
        let Some(req) = sink_required(gate.kind, library, config) else {
            continue;
        };
        // Express the constraint at the sink node itself (for reporting)…
        required[id.index()] = required[id.index()].min(req);
        // …and at its driver, through the final wire arc.
        let cell = library.timing(gate.kind);
        let driver = gate.inputs[0];
        let wire_d = wire.elmore_delay(placement.distance(driver, id), cell.input_cap);
        let slot = &mut required[driver.index()];
        *slot = slot.min(req - wire_d);
    }
    for &id in order.iter().rev() {
        let gate = netlist.gate(id);
        // Sinks were fully handled by the seeding pass; sequential Q-side
        // required (accumulated from fanout) concerns the *next* cycle and
        // must not leak onto the D pin.
        if gate.kind.is_sequential() || matches!(gate.kind, GateKind::Output | GateKind::TsvOut) {
            continue;
        }
        let req_here = required[id.index()];
        if req_here == big {
            continue;
        }
        let cell = library.timing(gate.kind);
        let cell_delay = if gate.kind.is_source() {
            Time(0.0)
        } else {
            cell.intrinsic + cell.drive_resistance * load[id.index()]
        };
        for &input in &gate.inputs {
            let wire_d = wire.elmore_delay(placement.distance(input, id), cell.input_cap);
            let req_at_input = req_here - cell_delay - wire_d;
            let slot = &mut required[input.index()];
            *slot = slot.min(req_at_input);
        }
    }
    // Unconstrained nodes (no path to any endpoint) get relaxed required =
    // arrival so their slack reads as zero rather than infinite.
    for i in 0..n {
        if required[i] == big {
            required[i] = arrival[i];
        }
    }

    // --- Endpoint slacks ---------------------------------------------------
    // Setup checks are evaluated at the sink's *input pin*: arrival of the
    // driver plus the final wire arc, against the sink's required time.
    let mut wns = Time(f64::INFINITY);
    let mut tns = Time(0.0);
    let mut worst = None;
    let mut any_endpoint = false;
    for (id, gate) in netlist.iter() {
        let Some(req) = sink_required(gate.kind, library, config) else {
            continue;
        };
        any_endpoint = true;
        let cell = library.timing(gate.kind);
        let driver = gate.inputs[0];
        let arr_in = arrival[driver.index()]
            + wire.elmore_delay(placement.distance(driver, id), cell.input_cap);
        let s = req - arr_in;
        if s < wns {
            wns = s;
            worst = Some(id);
        }
        if s.0 < 0.0 {
            tns += s;
        }
    }
    if !any_endpoint {
        wns = Time(0.0);
    }

    TimingReport {
        arrival,
        required,
        load,
        wns,
        tns,
        worst_endpoint: worst,
        clock_period: config.clock_period,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::{itc99, NetlistBuilder};
    use prebond3d_place::{place, PlaceConfig};

    fn setup(gates: usize) -> (Netlist, Placement, Library) {
        let die = itc99::generate_flat("d", gates, 16, 6, 6, 5);
        let placement = place(&die, &PlaceConfig::default(), 1);
        (die, placement, Library::nangate45_like())
    }

    #[test]
    fn relaxed_clock_always_meets() {
        let (die, placement, lib) = setup(300);
        let report = analyze(&die, &placement, &lib, &StaConfig::relaxed());
        assert!(!report.has_violation(), "wns = {}", report.wns);
        assert_eq!(report.tns, Time(0.0));
    }

    #[test]
    fn impossible_clock_violates() {
        let (die, placement, lib) = setup(300);
        let report = analyze(&die, &placement, &lib, &StaConfig::with_period(Time(50.0)));
        assert!(report.has_violation());
        assert!(report.tns.0 < 0.0);
        assert!(report.worst_endpoint.is_some());
    }

    #[test]
    fn deeper_logic_has_later_arrival() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let g1 = b.gate(prebond3d_netlist::GateKind::Not, &[a], "g1");
        let g2 = b.gate(prebond3d_netlist::GateKind::Not, &[g1], "g2");
        b.output(g2, "o");
        let n = b.finish().unwrap();
        let p = place(&n, &PlaceConfig::default(), 1);
        let lib = Library::nangate45_like();
        let r = analyze(&n, &p, &lib, &StaConfig::relaxed());
        let a_id = n.find("a").unwrap();
        let g1_id = n.find("g1").unwrap();
        let g2_id = n.find("g2").unwrap();
        assert!(r.arrival(g1_id) > r.arrival(a_id));
        assert!(r.arrival(g2_id) > r.arrival(g1_id));
    }

    #[test]
    fn worst_endpoint_slack_matches_wns() {
        let (die, placement, lib) = setup(200);
        let config = StaConfig::with_period(Time(800.0));
        let report = analyze(&die, &placement, &lib, &config);
        // Recompute the endpoint check by hand: required at the sink's
        // input versus the driver arrival plus the final wire arc.
        let ep = report.worst_endpoint.expect("endpoints exist");
        let gate = die.gate(ep);
        let driver = gate.inputs[0];
        let cell = lib.timing(gate.kind);
        let arr_in = report.arrival(driver)
            + lib
                .wire()
                .elmore_delay(placement.distance(driver, ep), cell.input_cap);
        let req = if gate.kind.is_sequential() {
            config.clock_period - lib.setup
        } else {
            config.clock_period
        };
        assert!(((req - arr_in) - report.wns).0.abs() < 1e-9);
    }

    #[test]
    fn loads_are_nonnegative_and_fanout_monotone() {
        let (die, placement, lib) = setup(200);
        let report = analyze(&die, &placement, &lib, &StaConfig::relaxed());
        for (id, _) in die.iter() {
            assert!(report.load(id).0 >= 0.0);
            if die.fanout(id).is_empty() {
                assert_eq!(report.load(id), Capacitance::ZERO);
            } else {
                assert!(report.load(id).0 > 0.0);
            }
        }
    }

    #[test]
    fn scan_ff_slack_reflects_period() {
        let (die, placement, lib) = setup(300);
        let tight = analyze(&die, &placement, &lib, &StaConfig::with_period(Time(700.0)));
        let loose = analyze(
            &die,
            &placement,
            &lib,
            &StaConfig::with_period(Time(1400.0)),
        );
        for ff in die.flip_flops() {
            let delta = loose.slack(ff) - tight.slack(ff);
            assert!((delta.0 - 700.0).abs() < 1e-6, "slack delta {delta}");
        }
    }
}

//! Incremental "what-if" pricing of scan-flip-flop reuse.
//!
//! Algorithm 1 evaluates thousands of candidate (scan-FF, TSV) pairs; a
//! full re-analysis per candidate would be prohibitive, and the paper's
//! contribution is precisely that the *model* used per candidate includes
//! both capacitance and wire delay. This module prices one candidate reuse
//! against an existing [`TimingReport`]:
//!
//! * **Inbound reuse** (Fig. 3a): a 2:1 mux is inserted between the TSV and
//!   its fanout logic, driven by the flip-flop's Q across a wire of the
//!   candidate's Manhattan length. The flip-flop's net gains the mux pin
//!   cap + wire cap; the TSV's functional path gains the mux delay.
//! * **Outbound reuse** (Fig. 3b): an XOR taps the TSV's driving net (extra
//!   pin + wire cap on that net → slower drive) and feeds the flip-flop's
//!   D through a mux (extra series delay on the flip-flop's capture path).
//!
//! Agrawal's capacitance-only model corresponds to
//! [`TapCost::capacitance_only`] — it ignores the wire terms, which is why
//! it picks distant flip-flops that later violate timing (Table III).

use prebond3d_celllib::{Capacitance, Distance, Library, Time};
use prebond3d_netlist::{GateId, Netlist};
use prebond3d_obs as obs;

use crate::analysis::TimingReport;

/// Direction of the TSV being wrapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReuseKind {
    /// The flip-flop drives the TSV's fanout in test mode (Fig. 3a).
    Inbound,
    /// The flip-flop observes the TSV's driver in test mode (Fig. 3b).
    Outbound,
}

/// Priced timing impact of one candidate reuse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TapCost {
    /// Extra capacitance charged to the flip-flop's (inbound) or the TSV
    /// driver's (outbound) net.
    pub extra_load: Capacitance,
    /// Extra series delay inserted into the affected functional path.
    pub series_delay: Time,
    /// Predicted post-reuse worst slack over the affected paths.
    pub predicted_slack: Time,
    /// Predicted post-reuse load on the net that must drive the new pin.
    pub predicted_load: Capacitance,
}

impl TapCost {
    /// `true` if the predicted slack stays at or above `s_th` and the
    /// loaded net stays within `cap_th`.
    pub fn is_safe(&self, s_th: Time, cap_th: Capacitance) -> bool {
        self.predicted_slack >= s_th && self.predicted_load <= cap_th
    }
}

/// Price the candidate reuse of scan flip-flop `ff` as the wrapper cell of
/// `tsv`, with `distance` the Manhattan separation from the placement.
///
/// The model is the paper's "accurate timing model": capacitance *and*
/// Elmore wire delay. Set `include_wire = false` to get Agrawal's
/// capacitance-only pricing for baseline comparisons.
#[allow(clippy::too_many_arguments)] // mirrors the paper's cost-model inputs
pub fn reuse_cost(
    netlist: &Netlist,
    report: &TimingReport,
    library: &Library,
    kind: ReuseKind,
    ff: GateId,
    tsv: GateId,
    distance: Distance,
    include_wire: bool,
) -> TapCost {
    obs::count("sta.whatif_queries", 1);
    let reuse = library.reuse();
    let wire = library.wire();
    let dist = if include_wire {
        distance
    } else {
        Distance(0.0)
    };
    let wire_cap = wire.driver_load(dist);

    match kind {
        ReuseKind::Inbound => {
            // FF Q gains mux pin + wire; all paths launched from the FF
            // slow by the extra drive delay.
            let ff_kind = netlist.gate(ff).kind;
            let rd = library.timing(ff_kind).drive_resistance;
            let extra = reuse.mux_input_cap + wire_cap;
            let drive_penalty = rd * extra;
            let ff_slack = report.slack(ff) - drive_penalty;
            // The TSV's functional fanout path is priced *differentially*
            // against the dedicated-wrapper baseline (wrapper adjacent to
            // the TSV, which the tight-clock calibration already absorbs):
            // the reused flip-flop arrives at the mux later than a local
            // wrapper would, by its heavier drive plus the wire flight.
            let baseline_drive = rd * reuse.mux_input_cap;
            let mux_penalty = rd * (report.load(ff) + extra) - baseline_drive
                + if include_wire {
                    wire.elmore_delay(dist, reuse.mux_input_cap)
                } else {
                    Time(0.0)
                };
            let mux_penalty = mux_penalty.max(Time(0.0));
            let tsv_slack = report.slack(tsv) - mux_penalty;
            TapCost {
                extra_load: extra,
                series_delay: mux_penalty,
                predicted_slack: ff_slack.min(tsv_slack),
                predicted_load: report.load(ff) + extra,
            }
        }
        ReuseKind::Outbound => {
            // The TSV's driving net gains the XOR pin + wire.
            let driver = netlist.gate(tsv).inputs[0];
            let drv_kind = netlist.gate(driver).kind;
            let rd = library.timing(drv_kind).drive_resistance;
            let extra = reuse.xor_input_cap + wire_cap;
            let drive_penalty = rd * extra;
            let tsv_slack = report.slack(tsv) - drive_penalty;
            // The FF's capture path gains mux (+ xor + wire) in series.
            let series = reuse.mux_delay
                + reuse.xor_delay
                + if include_wire {
                    wire.elmore_delay(dist, reuse.mux_input_cap)
                } else {
                    Time(0.0)
                };
            // The capture path is the flip-flop's D side: its slack lives
            // at the D driver (the setup constraint propagated there), not
            // at the flip-flop's Q node.
            let d_driver = netlist.gate(ff).inputs[0];
            let ff_slack = report.slack(d_driver) - series;
            // The tap's own path now terminates in the reused flip-flop,
            // paying wire + XOR + capture-mux and the flip-flop setup that
            // the (unconstrained) TsvOut slack does not include.
            let obs_series = series
                + if include_wire {
                    wire.elmore_delay(dist, reuse.xor_input_cap)
                } else {
                    Time(0.0)
                };
            let obs_slack = report.slack(tsv) - library.setup - obs_series;
            TapCost {
                extra_load: extra,
                series_delay: series,
                predicted_slack: ff_slack.min(tsv_slack).min(obs_slack),
                predicted_load: report.load(driver) + extra,
            }
        }
    }
}

/// Price an *additional wrapper cell* on `tsv` (no scan reuse): a dedicated
/// wrapper sits adjacent to the TSV, so the only functional cost is the
/// wrapper mux in series (inbound) or the wrapper pin load (outbound).
pub fn dedicated_wrapper_cost(
    netlist: &Netlist,
    report: &TimingReport,
    library: &Library,
    kind: ReuseKind,
    tsv: GateId,
) -> TapCost {
    obs::count("sta.whatif_queries", 1);
    let reuse = library.reuse();
    match kind {
        ReuseKind::Inbound => TapCost {
            extra_load: Capacitance::ZERO,
            series_delay: reuse.mux_delay,
            predicted_slack: report.slack(tsv) - reuse.mux_delay,
            predicted_load: report.load(tsv),
        },
        ReuseKind::Outbound => {
            let driver = netlist.gate(tsv).inputs[0];
            let rd = library.timing(netlist.gate(driver).kind).drive_resistance;
            let extra = library
                .timing(prebond3d_netlist::GateKind::Wrapper)
                .input_cap;
            TapCost {
                extra_load: extra,
                series_delay: Time(0.0),
                predicted_slack: report.slack(tsv) - rd * extra,
                predicted_load: report.load(driver) + extra,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, StaConfig};
    use prebond3d_netlist::itc99;
    use prebond3d_place::{place, PlaceConfig};

    fn die_with_tsvs() -> (Netlist, TimingReport, Library) {
        let spec = itc99::DieSpec {
            name: "die".into(),
            scan_flip_flops: 20,
            gates: 300,
            inbound_tsvs: 10,
            outbound_tsvs: 10,
            primary_inputs: 4,
            primary_outputs: 4,
            seed: 5,
        };
        let die = itc99::generate_die(&spec);
        let p = place(&die, &PlaceConfig::default(), 1);
        let lib = Library::nangate45_like();
        let report = analyze(&die, &p, &lib, &StaConfig::with_period(Time(1500.0)));
        (die, report, lib)
    }

    #[test]
    fn wire_terms_make_distance_matter() {
        let (die, report, lib) = die_with_tsvs();
        let ff = die.flip_flops()[0];
        let tsv = die.inbound_tsvs()[0];
        let near = reuse_cost(
            &die,
            &report,
            &lib,
            ReuseKind::Inbound,
            ff,
            tsv,
            Distance(10.0),
            true,
        );
        let far = reuse_cost(
            &die,
            &report,
            &lib,
            ReuseKind::Inbound,
            ff,
            tsv,
            Distance(800.0),
            true,
        );
        assert!(far.predicted_slack < near.predicted_slack);
        assert!(far.extra_load > near.extra_load);
        // Capacitance-only pricing is blind to the distance.
        let blind_near = reuse_cost(
            &die,
            &report,
            &lib,
            ReuseKind::Inbound,
            ff,
            tsv,
            Distance(10.0),
            false,
        );
        let blind_far = reuse_cost(
            &die,
            &report,
            &lib,
            ReuseKind::Inbound,
            ff,
            tsv,
            Distance(800.0),
            false,
        );
        assert_eq!(blind_near, blind_far);
    }

    #[test]
    fn outbound_reuse_charges_the_driver() {
        let (die, report, lib) = die_with_tsvs();
        let ff = die.flip_flops()[0];
        let tsv = die.outbound_tsvs()[0];
        let cost = reuse_cost(
            &die,
            &report,
            &lib,
            ReuseKind::Outbound,
            ff,
            tsv,
            Distance(50.0),
            true,
        );
        let driver = die.gate(tsv).inputs[0];
        assert!(cost.predicted_load > report.load(driver));
        assert!(cost.series_delay.0 > 0.0);
        assert!(cost.predicted_slack < report.slack(tsv).max(report.slack(ff)));
    }

    #[test]
    fn safety_check_uses_thresholds() {
        let (die, report, lib) = die_with_tsvs();
        let ff = die.flip_flops()[0];
        let tsv = die.inbound_tsvs()[0];
        let cost = reuse_cost(
            &die,
            &report,
            &lib,
            ReuseKind::Inbound,
            ff,
            tsv,
            Distance(20.0),
            true,
        );
        assert!(cost.is_safe(Time(-1e9), Capacitance(1e9)));
        assert!(!cost.is_safe(cost.predicted_slack + Time(1.0), Capacitance(1e9)));
        assert!(!cost.is_safe(Time(-1e9), Capacitance(0.0)));
    }

    #[test]
    fn dedicated_wrapper_is_cheap() {
        let (die, report, lib) = die_with_tsvs();
        let tsv_in = die.inbound_tsvs()[0];
        let tsv_out = die.outbound_tsvs()[0];
        let cin = dedicated_wrapper_cost(&die, &report, &lib, ReuseKind::Inbound, tsv_in);
        assert_eq!(cin.extra_load, Capacitance::ZERO);
        let cout = dedicated_wrapper_cost(&die, &report, &lib, ReuseKind::Outbound, tsv_out);
        assert_eq!(cout.series_delay, Time(0.0));
        assert!(cout.extra_load.0 > 0.0);
    }
}

//! # prebond3d-sta
//!
//! Static timing analysis over placed gate-level netlists — the PrimeTime
//! substitute of the `prebond3d` flow.
//!
//! The engine computes, in one topological pass each way:
//!
//! * **capacitive load** per net (pin caps + distance-based wire cap),
//! * **arrival times** (linear cell delay + Elmore wire delay),
//! * **required times** (clock period, flip-flop setup, output margins),
//! * **slack**, worst negative slack (WNS), total negative slack (TNS) and
//!   the critical path.
//!
//! Two consumers in the paper's flow:
//!
//! 1. Algorithm 1 reads `slack(n)` for outbound TSVs and
//!    `capacity_load(n)` for inbound TSVs when deciding node eligibility,
//!    and the [`whatif`] module prices candidate scan-flip-flop reuse
//!    (extra mux/XOR load + wire) without a full re-analysis.
//! 2. Table III's "timing violation" column is a full re-analysis of the
//!    DFT-modified netlist ([`analyze`] + [`TimingReport::has_violation`]).
//!
//! # Example
//!
//! ```
//! use prebond3d_netlist::itc99;
//! use prebond3d_place::{place, PlaceConfig};
//! use prebond3d_celllib::Library;
//! use prebond3d_sta::{analyze, StaConfig};
//!
//! let die = itc99::generate_flat("d", 200, 16, 6, 6, 5);
//! let placement = place(&die, &PlaceConfig::default(), 1);
//! let lib = Library::nangate45_like();
//! let report = analyze(&die, &placement, &lib, &StaConfig::relaxed());
//! assert!(!report.has_violation());
//! ```

pub mod analysis;
pub mod incremental;
pub mod paths;
pub mod report;
pub mod whatif;

use prebond3d_celllib::Time;

pub use analysis::{analyze, analyze_with_extra_loads, analyze_with_statics, TimingReport};
pub use incremental::StaAnalysis;
pub use paths::{k_worst_paths, slack_histogram, TimingPath};
pub use report::critical_path_text;
pub use whatif::{ReuseKind, TapCost};

/// Analysis configuration: the timing constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaConfig {
    /// Clock period the die must meet.
    pub clock_period: Time,
    /// External arrival time at primary inputs and (post-bond) inbound
    /// TSVs, relative to the clock edge.
    pub input_arrival: Time,
    /// Margin required before the capturing edge at primary outputs and
    /// outbound TSVs.
    pub output_margin: Time,
}

impl StaConfig {
    /// A generous 5 ns clock: nothing realistic violates. This is the
    /// paper's "no timing constraint" (area-optimized) scenario.
    pub fn relaxed() -> Self {
        StaConfig {
            clock_period: Time(5000.0),
            input_arrival: Time(0.0),
            output_margin: Time(0.0),
        }
    }

    /// A clock period of `period` picoseconds with zero I/O margins.
    pub fn with_period(period: Time) -> Self {
        StaConfig {
            clock_period: period,
            input_arrival: Time(0.0),
            output_margin: Time(0.0),
        }
    }
}

impl Default for StaConfig {
    fn default() -> Self {
        StaConfig::relaxed()
    }
}

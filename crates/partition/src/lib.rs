//! # prebond3d-partition
//!
//! 3D-IC partitioning substrate: splits a flat gate-level netlist across a
//! die stack and extracts the through-silicon-via (TSV) endpoints each die
//! sees, the way the authors' 3D-Craft flow produced the per-die netlists
//! of Table II.
//!
//! Three partitioners are provided:
//!
//! * [`random::partition`] — seeded balanced random assignment (baseline),
//! * [`level::partition`] — level-banded assignment (pipeline-style stacking),
//! * [`fm::partition`] — recursive Fiduccia–Mattheyses min-cut bipartitioning,
//!   the classical heuristic real 3D flows build on.
//!
//! [`tsv::extract_dies`] then materializes one [`prebond3d_netlist::Netlist`]
//! per die, with [`prebond3d_netlist::GateKind::TsvIn`] /
//! [`prebond3d_netlist::GateKind::TsvOut`] endpoints replacing every cut
//! net, plus a [`tsv::TsvMap`] recording which endpoints belong to the same
//! physical TSV.
//!
//! # Example
//!
//! ```
//! use prebond3d_netlist::itc99;
//! use prebond3d_partition::{fm, tsv, PartitionSpec};
//!
//! let flat = itc99::generate_flat("demo", 300, 24, 8, 8, 1);
//! let spec = PartitionSpec::new(4);
//! let assignment = fm::partition(&flat, &spec, 7);
//! let stack = tsv::extract_dies(&flat, &assignment).expect("valid partition");
//! assert_eq!(stack.dies.len(), 4);
//! ```

pub mod fm;
pub mod level;
pub mod metrics;
pub mod random;
pub mod spec;
pub mod tsv;

pub use spec::{Assignment, DieIndex, PartitionSpec};
pub use tsv::{DieStack, TsvMap};

//! Partitioning parameters and the assignment result type.

use prebond3d_netlist::{GateId, Netlist};

/// Index of a die in the stack, 0 = bottom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DieIndex(pub u8);

impl DieIndex {
    /// Index into per-die arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for DieIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "die{}", self.0)
    }
}

/// Partitioning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionSpec {
    /// Number of dies in the stack (the paper uses 4).
    pub num_dies: usize,
    /// Allowed relative imbalance: each die holds at most
    /// `(1 + balance_tolerance) × ideal` gates. Default 0.1.
    pub balance_tolerance: f64,
}

impl PartitionSpec {
    /// Spec with the default 10 % balance tolerance.
    pub fn new(num_dies: usize) -> Self {
        assert!(num_dies >= 1, "need at least one die");
        PartitionSpec {
            num_dies,
            balance_tolerance: 0.1,
        }
    }

    /// Maximum gates a die may hold for a netlist of `total` gates.
    pub fn max_per_die(&self, total: usize) -> usize {
        let ideal = total as f64 / self.num_dies as f64;
        (ideal * (1.0 + self.balance_tolerance)).ceil() as usize
    }
}

impl Default for PartitionSpec {
    fn default() -> Self {
        PartitionSpec::new(4)
    }
}

/// A die assignment for every gate of a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    dies: Vec<DieIndex>,
    num_dies: usize,
}

impl Assignment {
    /// Wrap a per-gate die vector.
    ///
    /// # Panics
    ///
    /// Panics if any entry is `>= num_dies`.
    pub fn new(dies: Vec<DieIndex>, num_dies: usize) -> Self {
        assert!(
            dies.iter().all(|d| d.index() < num_dies),
            "die index out of range"
        );
        Assignment { dies, num_dies }
    }

    /// Die of gate `id`.
    pub fn die_of(&self, id: GateId) -> DieIndex {
        self.dies[id.index()]
    }

    /// Number of dies.
    pub fn num_dies(&self) -> usize {
        self.num_dies
    }

    /// Number of gates assigned.
    pub fn len(&self) -> usize {
        self.dies.len()
    }

    /// `true` when no gate is assigned.
    pub fn is_empty(&self) -> bool {
        self.dies.is_empty()
    }

    /// Gates per die.
    pub fn die_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_dies];
        for d in &self.dies {
            sizes[d.index()] += 1;
        }
        sizes
    }

    /// Count of cut nets: nets whose driver and at least one sink live on
    /// different dies. Each such (net, destination-die) pair needs one TSV.
    pub fn cut_size(&self, netlist: &Netlist) -> usize {
        let mut cut = 0usize;
        for (id, _) in netlist.iter() {
            let src = self.die_of(id);
            let mut dest_dies: Vec<bool> = vec![false; self.num_dies];
            for &fo in netlist.fanout(id) {
                let d = self.die_of(fo);
                if d != src {
                    dest_dies[d.index()] = true;
                }
            }
            cut += dest_dies.iter().filter(|&&b| b).count();
        }
        cut
    }

    /// Mutable access used by refinement passes.
    #[allow(dead_code)]
    pub(crate) fn set(&mut self, id: GateId, die: DieIndex) {
        assert!(die.index() < self.num_dies);
        self.dies[id.index()] = die;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn max_per_die_respects_tolerance() {
        let spec = PartitionSpec::new(4);
        assert_eq!(spec.max_per_die(100), 28); // 25 * 1.1 = 27.5 → 28
    }

    #[test]
    fn cut_size_counts_destination_dies() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, &[a], "g1");
        let g2 = b.gate(GateKind::Not, &[a], "g2");
        b.output(g1, "o1");
        b.output(g2, "o2");
        let n = b.finish().unwrap();
        // a on die0; g1,o1 on die1; g2,o2 on die2 → net `a` crosses to two
        // dies → 2 TSVs.
        let dies = vec![
            DieIndex(0),
            DieIndex(1),
            DieIndex(2),
            DieIndex(1),
            DieIndex(2),
        ];
        let asg = Assignment::new(dies, 3);
        assert_eq!(asg.cut_size(&n), 2);
        assert_eq!(asg.die_sizes(), vec![1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "die index out of range")]
    fn rejects_out_of_range_die() {
        Assignment::new(vec![DieIndex(5)], 4);
    }
}

//! Seeded balanced random partitioning (the baseline partitioner).

use prebond3d_rng::StdRng;

use prebond3d_netlist::Netlist;

use crate::spec::{Assignment, DieIndex, PartitionSpec};

/// Assign every gate to a uniformly random die, subject to the balance
/// bound of `spec`. Deterministic given `seed`.
pub fn partition(netlist: &Netlist, spec: &PartitionSpec, seed: u64) -> Assignment {
    let mut rng = StdRng::seed_from_u64(seed);
    let cap = spec.max_per_die(netlist.len());
    let mut sizes = vec![0usize; spec.num_dies];
    let mut dies = Vec::with_capacity(netlist.len());
    for _ in netlist.ids() {
        // Rejection-sample a die that still has room; capacity is
        // guaranteed to exist because Σ caps ≥ total.
        let die = loop {
            let d = rng.gen_range(0..spec.num_dies);
            if sizes[d] < cap {
                break d;
            }
        };
        sizes[die] += 1;
        dies.push(DieIndex(die as u8));
    }
    Assignment::new(dies, spec.num_dies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::itc99;

    #[test]
    fn balanced_and_deterministic() {
        let n = itc99::generate_flat("t", 400, 30, 8, 8, 3);
        let spec = PartitionSpec::new(4);
        let a1 = partition(&n, &spec, 9);
        let a2 = partition(&n, &spec, 9);
        assert_eq!(a1, a2);
        let cap = spec.max_per_die(n.len());
        for s in a1.die_sizes() {
            assert!(s <= cap);
        }
        assert_eq!(a1.len(), n.len());
    }

    #[test]
    fn different_seeds_differ() {
        let n = itc99::generate_flat("t", 400, 30, 8, 8, 3);
        let spec = PartitionSpec::new(4);
        assert_ne!(partition(&n, &spec, 1), partition(&n, &spec, 2));
    }
}

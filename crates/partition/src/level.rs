//! Level-banded partitioning.
//!
//! Assigns gates to dies by combinational depth band: the shallowest
//! quarter of the logic goes to die 0, the next to die 1, and so on. This
//! mimics pipeline-style 3D stacking where successive logic stages sit on
//! successive dies and is the partitioner that produces the most
//! "feed-forward" TSV traffic.

use prebond3d_netlist::{traverse, Netlist};

use crate::spec::{Assignment, DieIndex, PartitionSpec};

/// Partition by combinational level bands.
///
/// Gates are sorted by `(level, id)` and sliced into `spec.num_dies`
/// equal-size contiguous chunks, which also guarantees perfect balance.
pub fn partition(netlist: &Netlist, spec: &PartitionSpec) -> Assignment {
    let levels = traverse::levels(netlist);
    let mut order: Vec<usize> = (0..netlist.len()).collect();
    order.sort_by_key(|&i| (levels[i], i));

    let total = netlist.len();
    let mut dies = vec![DieIndex(0); total];
    for (rank, &gate_idx) in order.iter().enumerate() {
        let die = (rank * spec.num_dies / total).min(spec.num_dies - 1);
        dies[gate_idx] = DieIndex(die as u8);
    }
    Assignment::new(dies, spec.num_dies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn bands_follow_depth() {
        // A 8-gate inverter chain over 2 dies: first half die0, rest die1.
        let mut b = NetlistBuilder::new("chain");
        let mut sig = b.input("a");
        for i in 0..6 {
            sig = b.gate(GateKind::Not, &[sig], format!("n{i}"));
        }
        b.output(sig, "o");
        let n = b.finish().unwrap();
        let asg = partition(&n, &PartitionSpec::new(2));
        assert_eq!(asg.die_of(n.find("a").unwrap()), DieIndex(0));
        assert_eq!(asg.die_of(n.find("n0").unwrap()), DieIndex(0));
        assert_eq!(asg.die_of(n.find("n5").unwrap()), DieIndex(1));
        assert_eq!(asg.die_of(n.find("o").unwrap()), DieIndex(1));
        // Perfectly balanced.
        let sizes = asg.die_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), n.len());
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn chain_cut_is_minimal() {
        let mut b = NetlistBuilder::new("chain");
        let mut sig = b.input("a");
        for i in 0..9 {
            sig = b.gate(GateKind::Not, &[sig], format!("n{i}"));
        }
        b.output(sig, "o");
        let n = b.finish().unwrap();
        let asg = partition(&n, &PartitionSpec::new(2));
        // A chain sliced once has exactly one cut net.
        assert_eq!(asg.cut_size(&n), 1);
    }
}

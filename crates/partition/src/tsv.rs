//! Die extraction: materialize per-die netlists with TSV endpoints.
//!
//! Given a flat netlist and a die [`Assignment`], every net that crosses
//! dies is severed: the driving die receives a
//! [`GateKind::TsvOut`] tap and every consuming die a
//! [`GateKind::TsvIn`] source, one per (net, destination-die) pair —
//! matching how a physical TSV connects exactly two dies.

use std::collections::HashMap;

use prebond3d_netlist::{Gate, GateId, GateKind, Netlist, NetlistError};

use crate::spec::{Assignment, DieIndex};

/// One physical TSV: an outbound endpoint on the driving die paired with an
/// inbound endpoint on the consuming die.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TsvLink {
    /// The driving signal in the flat (pre-partition) netlist.
    pub flat_driver: GateId,
    /// Die holding the driver and the outbound endpoint.
    pub from_die: DieIndex,
    /// Die holding the consumers and the inbound endpoint.
    pub to_die: DieIndex,
    /// Name of the `tsv_out` gate in the `from_die` netlist.
    pub outbound: String,
    /// Name of the `tsv_in` gate in the `to_die` netlist.
    pub inbound: String,
}

/// All TSVs of a partitioned stack.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TsvMap {
    /// Links in deterministic (driver id, destination die) order.
    pub links: Vec<TsvLink>,
}

impl TsvMap {
    /// Number of physical TSVs.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// `true` when the stack has no TSVs.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Links whose inbound endpoint lands on `die`.
    pub fn inbound_of(&self, die: DieIndex) -> impl Iterator<Item = &TsvLink> {
        self.links.iter().filter(move |l| l.to_die == die)
    }

    /// Links whose outbound endpoint sits on `die`.
    pub fn outbound_of(&self, die: DieIndex) -> impl Iterator<Item = &TsvLink> {
        self.links.iter().filter(move |l| l.from_die == die)
    }
}

/// A partitioned die stack: one netlist per die plus the TSV map.
#[derive(Debug, Clone, PartialEq)]
pub struct DieStack {
    /// Per-die netlists, index = die number.
    pub dies: Vec<Netlist>,
    /// The physical TSVs connecting them.
    pub tsvs: TsvMap,
}

/// Split `flat` into per-die netlists according to `assignment`.
///
/// # Errors
///
/// Propagates netlist validation errors; these indicate an internal bug
/// (extraction preserves well-formedness) and are surfaced rather than
/// panicked on so callers can report the offending die.
pub fn extract_dies(flat: &Netlist, assignment: &Assignment) -> Result<DieStack, NetlistError> {
    let k = assignment.num_dies();
    // Per-die gate vectors and flat-id → local-id maps.
    let mut gates: Vec<Vec<Gate>> = vec![Vec::new(); k];
    let mut local: Vec<HashMap<GateId, GateId>> = vec![HashMap::new(); k];

    // Pass 1: clone every gate into its die (inputs rewired later).
    for (id, gate) in flat.iter() {
        let d = assignment.die_of(id).index();
        let lid = GateId(gates[d].len() as u32);
        gates[d].push(gate.clone());
        local[d].insert(id, lid);
    }

    // Pass 2: create TSV endpoints for every cross-die (driver, dest) pair.
    let mut tsv_in_of: HashMap<(GateId, usize), GateId> = HashMap::new();
    let mut links = Vec::new();
    for (id, gate) in flat.iter() {
        let src = assignment.die_of(id);
        let mut dests: Vec<usize> = flat
            .fanout(id)
            .iter()
            .map(|&fo| assignment.die_of(fo).index())
            .filter(|&d| d != src.index())
            .collect();
        dests.sort_unstable();
        dests.dedup();
        for dest in dests {
            let in_name = format!("tsv_in__{}", gate.name);
            let out_name = format!("tsv_out__{}__die{dest}", gate.name);
            // Inbound endpoint on the consuming die.
            let in_id = GateId(gates[dest].len() as u32);
            gates[dest].push(Gate::new(in_name.clone(), GateKind::TsvIn, vec![]));
            tsv_in_of.insert((id, dest), in_id);
            // Outbound tap on the driving die.
            let local_driver = local[src.index()][&id];
            gates[src.index()].push(Gate::new(
                out_name.clone(),
                GateKind::TsvOut,
                vec![local_driver],
            ));
            links.push(TsvLink {
                flat_driver: id,
                from_die: src,
                to_die: DieIndex(dest as u8),
                outbound: out_name,
                inbound: in_name,
            });
        }
    }

    // Pass 3: rewire every cloned gate's inputs.
    for (id, gate) in flat.iter() {
        let d = assignment.die_of(id).index();
        let lid = local[d][&id];
        let new_inputs: Vec<GateId> = gate
            .inputs
            .iter()
            .map(|&input| {
                let s = assignment.die_of(input).index();
                if s == d {
                    local[d][&input]
                } else {
                    tsv_in_of[&(input, d)]
                }
            })
            .collect();
        gates[d][lid.index()].inputs = new_inputs;
    }

    let mut dies = Vec::with_capacity(k);
    for (d, die_gates) in gates.into_iter().enumerate() {
        dies.push(Netlist::from_gates(
            format!("{}_die{d}", flat.name()),
            die_gates,
        )?);
    }
    Ok(DieStack {
        dies,
        tsvs: TsvMap { links },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fm, level, random, PartitionSpec};
    use prebond3d_netlist::itc99;

    fn flat() -> Netlist {
        itc99::generate_flat("flat", 300, 20, 8, 8, 17)
    }

    #[test]
    fn endpoint_counts_match_links() {
        let n = flat();
        let asg = fm::partition(&n, &PartitionSpec::new(4), 3);
        let stack = extract_dies(&n, &asg).unwrap();
        assert_eq!(stack.dies.len(), 4);
        for (d, die) in stack.dies.iter().enumerate() {
            let stats = die.stats();
            let want_in = stack.tsvs.inbound_of(DieIndex(d as u8)).count();
            let want_out = stack.tsvs.outbound_of(DieIndex(d as u8)).count();
            assert_eq!(stats.inbound_tsvs, want_in, "die {d} inbound");
            assert_eq!(stats.outbound_tsvs, want_out, "die {d} outbound");
        }
    }

    #[test]
    fn tsv_count_equals_cut_size() {
        let n = flat();
        for seed in [1u64, 2, 3] {
            let asg = random::partition(&n, &PartitionSpec::new(4), seed);
            let stack = extract_dies(&n, &asg).unwrap();
            assert_eq!(stack.tsvs.len(), asg.cut_size(&n));
        }
    }

    #[test]
    fn gate_population_is_preserved() {
        let n = flat();
        let asg = level::partition(&n, &PartitionSpec::new(4));
        let stack = extract_dies(&n, &asg).unwrap();
        let flat_stats = n.stats();
        let total_gates: usize = stack
            .dies
            .iter()
            .map(|d| d.stats().combinational_gates)
            .sum();
        let total_ffs: usize = stack.dies.iter().map(|d| d.stats().sequential()).sum();
        assert_eq!(total_gates, flat_stats.combinational_gates);
        assert_eq!(total_ffs, flat_stats.sequential());
    }

    #[test]
    fn endpoint_names_resolve() {
        let n = flat();
        let asg = fm::partition(&n, &PartitionSpec::new(2), 9);
        let stack = extract_dies(&n, &asg).unwrap();
        for link in &stack.tsvs.links {
            let out_die = &stack.dies[link.from_die.index()];
            let in_die = &stack.dies[link.to_die.index()];
            assert!(out_die.find(&link.outbound).is_some(), "{}", link.outbound);
            assert!(in_die.find(&link.inbound).is_some(), "{}", link.inbound);
        }
    }
}

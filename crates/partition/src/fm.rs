//! Recursive Fiduccia–Mattheyses min-cut partitioning.
//!
//! FM is the classical move-based hypergraph bipartitioning heuristic
//! underlying production placement/partitioning flows (including academic
//! 3D flows like 3D-Craft). This implementation:
//!
//! * models every driven signal as a hyperedge (driver + its fanouts),
//! * runs gain-directed passes with cell locking and best-prefix rollback,
//! * handles `k > 2` dies by recursive bisection of the die range.
//!
//! The partitioner is deterministic given the seed (ties are broken by
//! cell id).

use prebond3d_rng::StdRng;

use prebond3d_netlist::{GateId, Netlist};

use crate::spec::{Assignment, DieIndex, PartitionSpec};

/// Partition `netlist` onto `spec.num_dies` dies minimizing cut nets.
///
/// Runs recursive FM bisection starting from a seeded random split.
pub fn partition(netlist: &Netlist, spec: &PartitionSpec, seed: u64) -> Assignment {
    let mut dies = vec![DieIndex(0); netlist.len()];
    let all: Vec<usize> = (0..netlist.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    bisect(netlist, spec, &all, 0, spec.num_dies, &mut dies, &mut rng);
    Assignment::new(dies, spec.num_dies)
}

/// Recursively split `cells` over die range `[lo, hi)`.
fn bisect(
    netlist: &Netlist,
    spec: &PartitionSpec,
    cells: &[usize],
    lo: usize,
    hi: usize,
    dies: &mut [DieIndex],
    rng: &mut StdRng,
) {
    if hi - lo == 1 {
        for &c in cells {
            dies[c] = DieIndex(lo as u8);
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    // Target share of the left side is proportional to its die count.
    let left_share = (mid - lo) as f64 / (hi - lo) as f64;
    let sides = bipartition(netlist, spec, cells, left_share, rng);
    let (left, right): (Vec<usize>, Vec<usize>) = cells
        .iter()
        .copied()
        .partition(|&c| sides[index_in(cells, c)]);
    bisect(netlist, spec, &left, lo, mid, dies, rng);
    bisect(netlist, spec, &right, mid, hi, dies, rng);
}

/// Position of `cell` in `cells` (cells are sorted ascending by
/// construction).
fn index_in(cells: &[usize], cell: usize) -> usize {
    cells.binary_search(&cell).expect("cell belongs to slice")
}

/// One FM bipartition of `cells`; `true` in the result = left side.
fn bipartition(
    netlist: &Netlist,
    spec: &PartitionSpec,
    cells: &[usize],
    left_share: f64,
    rng: &mut StdRng,
) -> Vec<bool> {
    let n = cells.len();
    if n == 0 {
        return Vec::new();
    }
    // Local dense ids for the sub-hypergraph.
    let mut local_of = vec![usize::MAX; netlist.len()];
    for (i, &c) in cells.iter().enumerate() {
        local_of[c] = i;
    }

    // Hyperedges restricted to this cell set: driver + fanouts, keeping
    // only members inside `cells`, dropping degenerate (size < 2) edges.
    let mut nets: Vec<Vec<usize>> = Vec::new();
    for &c in cells {
        let id = GateId(c as u32);
        let mut members: Vec<usize> = vec![local_of[c]];
        members.extend(
            netlist
                .fanout(id)
                .iter()
                .filter(|fo| local_of[fo.index()] != usize::MAX)
                .map(|fo| local_of[fo.index()]),
        );
        members.sort_unstable();
        members.dedup();
        if members.len() >= 2 {
            nets.push(members);
        }
    }
    let mut pins: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ni, net) in nets.iter().enumerate() {
        for &m in net {
            pins[m].push(ni);
        }
    }

    let target_left = ((n as f64) * left_share).round() as usize;
    let slack = ((n as f64 * spec.balance_tolerance) as usize).max(1);

    // Initial seeded random split near the target.
    let mut side = vec![false; n];
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    for &c in order.iter().take(target_left) {
        side[c] = true;
    }

    let max_passes = 12;
    for _ in 0..max_passes {
        let improved = fm_pass(&nets, &pins, &mut side, target_left, slack);
        if !improved {
            break;
        }
    }
    side
}

/// One FM pass: move cells by gain with locking, keep the best prefix.
/// Returns `true` if the cut improved.
fn fm_pass(
    nets: &[Vec<usize>],
    pins: &[Vec<usize>],
    side: &mut [bool],
    target_left: usize,
    slack: usize,
) -> bool {
    let n = side.len();
    // Per-net side counts.
    let mut left_count: Vec<usize> = nets
        .iter()
        .map(|net| net.iter().filter(|&&m| side[m]).count())
        .collect();

    let gain_of = |cell: usize, side: &[bool], left_count: &[usize]| -> i64 {
        let mut g = 0i64;
        for &ni in &pins[cell] {
            let (from, to) = if side[cell] {
                (left_count[ni], nets[ni].len() - left_count[ni])
            } else {
                (nets[ni].len() - left_count[ni], left_count[ni])
            };
            if from == 1 {
                g += 1; // net becomes uncut
            }
            if to == 0 {
                g -= 1; // net becomes cut
            }
        }
        g
    };

    let mut locked = vec![false; n];
    let mut heap: std::collections::BinaryHeap<(i64, usize)> =
        (0..n).map(|c| (gain_of(c, side, &left_count), c)).collect();

    let mut left_size = side.iter().filter(|&&s| s).count();
    let mut cum_gain = 0i64;
    let mut best_gain = 0i64;
    let mut best_prefix = 0usize;
    let mut moves: Vec<usize> = Vec::with_capacity(n);

    while let Some((g, cell)) = heap.pop() {
        if locked[cell] {
            continue;
        }
        // Lazy invalidation: recompute and re-push if stale.
        let fresh = gain_of(cell, side, &left_count);
        if fresh != g {
            heap.push((fresh, cell));
            continue;
        }
        // Balance feasibility of the move.
        let new_left = if side[cell] {
            left_size - 1
        } else {
            left_size + 1
        };
        if new_left + slack < target_left || new_left > target_left + slack {
            locked[cell] = true; // cannot move this pass
            continue;
        }
        // Apply the move.
        locked[cell] = true;
        for &ni in &pins[cell] {
            if side[cell] {
                left_count[ni] -= 1;
            } else {
                left_count[ni] += 1;
            }
        }
        side[cell] = !side[cell];
        left_size = new_left;
        cum_gain += fresh;
        moves.push(cell);
        if cum_gain > best_gain {
            best_gain = cum_gain;
            best_prefix = moves.len();
        }
        // Refresh neighbours (lazy: just re-push with new gains).
        for &ni in &pins[cell] {
            for &m in &nets[ni] {
                if !locked[m] {
                    heap.push((gain_of(m, side, &left_count), m));
                }
            }
        }
    }

    // Roll back moves beyond the best prefix.
    for &cell in moves.iter().skip(best_prefix).rev() {
        side[cell] = !side[cell];
    }
    best_gain > 0
}

/// Cut size (in hyperedges) of a boolean bipartition — exposed for tests
/// and benchmarking the heuristic itself.
pub fn bipartition_cut(netlist: &Netlist, side: &[bool]) -> usize {
    let mut cut = 0usize;
    for (id, _) in netlist.iter() {
        let s = side[id.index()];
        if netlist.fanout(id).iter().any(|fo| side[fo.index()] != s) {
            cut += 1;
        }
    }
    cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random;
    use prebond3d_netlist::itc99;

    #[test]
    fn fm_beats_random_on_cut() {
        let n = itc99::generate_flat("t", 600, 40, 10, 10, 11);
        let spec = PartitionSpec::new(4);
        let fm_cut = partition(&n, &spec, 5).cut_size(&n);
        let rnd_cut = random::partition(&n, &spec, 5).cut_size(&n);
        assert!(
            fm_cut < rnd_cut,
            "FM cut {fm_cut} should beat random cut {rnd_cut}"
        );
    }

    #[test]
    fn fm_is_deterministic_and_balanced() {
        let n = itc99::generate_flat("t", 400, 25, 8, 8, 2);
        let spec = PartitionSpec::new(4);
        let a = partition(&n, &spec, 3);
        let b = partition(&n, &spec, 3);
        assert_eq!(a, b);
        let sizes = a.die_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), n.len());
        // Every die is populated and none grossly oversized.
        let ideal = n.len() / 4;
        for s in sizes {
            assert!(
                s > ideal / 2 && s < ideal * 2,
                "die size {s} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn two_die_partition_works() {
        let n = itc99::generate_flat("t", 200, 12, 6, 6, 4);
        let spec = PartitionSpec::new(2);
        let a = partition(&n, &spec, 1);
        assert_eq!(a.num_dies(), 2);
        assert!(a.die_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn single_die_is_trivial() {
        let n = itc99::generate_flat("t", 100, 8, 4, 4, 6);
        let a = partition(&n, &PartitionSpec::new(1), 1);
        assert_eq!(a.cut_size(&n), 0);
        assert_eq!(a.die_sizes(), vec![n.len()]);
    }
}

//! Partition quality metrics beyond raw cut size.

use prebond3d_netlist::Netlist;

use crate::spec::Assignment;

/// Summary statistics of one die assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionMetrics {
    /// TSVs required (cut nets × destination dies).
    pub tsv_count: usize,
    /// Nets crossing dies at all (each may need several TSVs).
    pub cut_nets: usize,
    /// Gates per die.
    pub die_sizes: Vec<usize>,
    /// Max/min die-size ratio (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Per-die (inbound, outbound) TSV endpoint counts.
    pub die_tsvs: Vec<(usize, usize)>,
}

/// Compute all metrics for `assignment` on `netlist`.
pub fn evaluate(netlist: &Netlist, assignment: &Assignment) -> PartitionMetrics {
    let k = assignment.num_dies();
    let mut cut_nets = 0usize;
    let mut tsv_count = 0usize;
    let mut die_tsvs = vec![(0usize, 0usize); k];
    for (id, _) in netlist.iter() {
        let src = assignment.die_of(id);
        let mut dests = vec![false; k];
        for &fo in netlist.fanout(id) {
            let d = assignment.die_of(fo);
            if d != src {
                dests[d.index()] = true;
            }
        }
        let n_dests = dests.iter().filter(|&&b| b).count();
        if n_dests > 0 {
            cut_nets += 1;
            tsv_count += n_dests;
            die_tsvs[src.index()].1 += n_dests; // outbound endpoints
            for (d, &hit) in dests.iter().enumerate() {
                if hit {
                    die_tsvs[d].0 += 1; // inbound endpoint
                }
            }
        }
    }
    let die_sizes = assignment.die_sizes();
    let max = *die_sizes.iter().max().unwrap_or(&0) as f64;
    let min = *die_sizes.iter().min().unwrap_or(&0) as f64;
    PartitionMetrics {
        tsv_count,
        cut_nets,
        die_sizes,
        imbalance: if min > 0.0 { max / min } else { f64::INFINITY },
        die_tsvs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fm, random, PartitionSpec};
    use prebond3d_netlist::itc99;

    #[test]
    fn metrics_are_internally_consistent() {
        let flat = itc99::generate_flat("m", 400, 30, 8, 8, 3);
        let spec = PartitionSpec::new(4);
        let asg = fm::partition(&flat, &spec, 5);
        let m = evaluate(&flat, &asg);
        assert_eq!(m.tsv_count, asg.cut_size(&flat));
        assert!(m.cut_nets <= m.tsv_count);
        assert_eq!(m.die_sizes.iter().sum::<usize>(), flat.len());
        // Endpoint bookkeeping: Σ inbound = Σ outbound = TSV count.
        let inbound: usize = m.die_tsvs.iter().map(|t| t.0).sum();
        let outbound: usize = m.die_tsvs.iter().map(|t| t.1).sum();
        assert_eq!(inbound, m.tsv_count);
        assert_eq!(outbound, m.tsv_count);
        assert!(m.imbalance >= 1.0);
    }

    #[test]
    fn fm_improves_both_cut_metrics() {
        let flat = itc99::generate_flat("m", 500, 40, 8, 8, 9);
        let spec = PartitionSpec::new(4);
        let fm_m = evaluate(&flat, &fm::partition(&flat, &spec, 2));
        let rnd_m = evaluate(&flat, &random::partition(&flat, &spec, 2));
        assert!(fm_m.tsv_count < rnd_m.tsv_count);
        assert!(fm_m.cut_nets < rnd_m.cut_nets);
    }
}

//! Table III: reused scan flip-flops and additional wrapper cells under
//! the area-optimized (no timing) and performance-optimized (tight timing)
//! scenarios, Agrawal vs. Ours, with timing-violation flags.

use std::fmt::Write as _;

use prebond3d_obs::json::Value;
use prebond3d_wcm::flow::{FlowConfig, Method, Scenario};

use crate::context::{self, DieCase};
use crate::lintflow::checked_run_flow;

/// One die's results across the four (method, scenario) cells.
#[derive(Debug, Clone)]
pub struct Row {
    /// `"b12 Die1"`.
    pub label: String,
    /// (reused, additional) for Agrawal, no timing.
    pub agrawal_area: (usize, usize),
    /// (reused, additional) for Ours, no timing.
    pub ours_area: (usize, usize),
    /// (reused, additional, violation) for Agrawal, tight timing.
    pub agrawal_tight: (usize, usize, bool),
    /// (reused, additional, violation) for Ours, tight timing.
    pub ours_tight: (usize, usize, bool),
}

impl Row {
    /// Checkpoint codec: serialize for the resume log.
    pub fn to_json(&self) -> Value {
        let area = |(reused, additional): (usize, usize)| {
            Value::obj([("reused", reused.into()), ("additional", additional.into())])
        };
        let tight = |(reused, additional, violation): (usize, usize, bool)| {
            Value::obj([
                ("reused", reused.into()),
                ("additional", additional.into()),
                ("violation", violation.into()),
            ])
        };
        Value::obj([
            ("label", self.label.as_str().into()),
            ("agrawal_area", area(self.agrawal_area)),
            ("ours_area", area(self.ours_area)),
            ("agrawal_tight", tight(self.agrawal_tight)),
            ("ours_tight", tight(self.ours_tight)),
        ])
    }

    /// Checkpoint codec: revive a row from the resume log.
    pub fn from_json(v: &Value) -> Option<Row> {
        let area = |v: &Value| {
            Some((
                v.get("reused")?.as_u64()? as usize,
                v.get("additional")?.as_u64()? as usize,
            ))
        };
        let tight = |v: &Value| {
            Some((
                v.get("reused")?.as_u64()? as usize,
                v.get("additional")?.as_u64()? as usize,
                v.get("violation")?.as_bool()?,
            ))
        };
        Some(Row {
            label: v.get("label")?.as_str()?.to_string(),
            agrawal_area: area(v.get("agrawal_area")?)?,
            ours_area: area(v.get("ours_area")?)?,
            agrawal_tight: tight(v.get("agrawal_tight")?)?,
            ours_tight: tight(v.get("ours_tight")?)?,
        })
    }
}

/// Run the Table III experiment for one die.
pub fn run_die(case: &DieCase) -> Row {
    let lib = context::library();
    let get = |method: Method, scenario: Scenario| {
        let config = FlowConfig {
            method,
            scenario,
            ordering: None,
            allow_overlap: None,
        };
        let r = checked_run_flow(&case.label(), &case.netlist, &case.placement, &lib, &config)
            .expect("flow runs on benchmark dies and lints clean");
        (
            r.reused_scan_ffs,
            r.additional_wrapper_cells,
            r.timing_violation,
        )
    };
    let aa = get(Method::Agrawal, Scenario::Area);
    let oa = get(Method::Ours, Scenario::Area);
    let at = get(Method::Agrawal, Scenario::Tight);
    let ot = get(Method::Ours, Scenario::Tight);
    Row {
        label: case.label(),
        agrawal_area: (aa.0, aa.1),
        ours_area: (oa.0, oa.1),
        agrawal_tight: at,
        ours_tight: ot,
    }
}

/// Run over the selected benchmark set, one pool worker per die —
/// panic-isolated and checkpointed.
pub fn run() -> Vec<Row> {
    let cases = context::load_circuits(&context::circuit_names());
    crate::report::resilient_par_die_scopes(
        "table3",
        &cases,
        DieCase::label,
        run_die,
        Row::to_json,
        Row::from_json,
    )
    .into_iter()
    .flatten()
    .collect()
}

/// Aggregate means and violation counts, paper-style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Mean (reused, additional) per cell of the table.
    pub agrawal_area: (f64, f64),
    /// Ours, area.
    pub ours_area: (f64, f64),
    /// Agrawal tight + violation count.
    pub agrawal_tight: (f64, f64, usize),
    /// Ours tight + violation count.
    pub ours_tight: (f64, f64, usize),
    /// Number of dies.
    pub dies: usize,
}

/// Summarize rows.
pub fn summarize(rows: &[Row]) -> Summary {
    let n = rows.len().max(1) as f64;
    let mean = |f: &dyn Fn(&Row) -> usize| rows.iter().map(|r| f(r) as f64).sum::<f64>() / n;
    Summary {
        agrawal_area: (mean(&|r| r.agrawal_area.0), mean(&|r| r.agrawal_area.1)),
        ours_area: (mean(&|r| r.ours_area.0), mean(&|r| r.ours_area.1)),
        agrawal_tight: (
            mean(&|r| r.agrawal_tight.0),
            mean(&|r| r.agrawal_tight.1),
            rows.iter().filter(|r| r.agrawal_tight.2).count(),
        ),
        ours_tight: (
            mean(&|r| r.ours_tight.0),
            mean(&|r| r.ours_tight.1),
            rows.iter().filter(|r| r.ours_tight.2).count(),
        ),
        dies: rows.len(),
    }
}

/// Render the table.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table III — #reused scan FFs / #additional wrapper cells (V = timing violation)"
    );
    let _ = writeln!(
        out,
        "{:<12} | {:>13} | {:>13} | {:>15} | {:>15}",
        "", "Agrawal(area)", "Ours(area)", "Agrawal(tight)", "Ours(tight)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} | {:>6}/{:<6} | {:>6}/{:<6} | {:>5}/{:<5} {:>3} | {:>5}/{:<5} {:>3}",
            r.label,
            r.agrawal_area.0,
            r.agrawal_area.1,
            r.ours_area.0,
            r.ours_area.1,
            r.agrawal_tight.0,
            r.agrawal_tight.1,
            if r.agrawal_tight.2 { "V" } else { "-" },
            r.ours_tight.0,
            r.ours_tight.1,
            if r.ours_tight.2 { "V" } else { "-" },
        );
    }
    let s = summarize(rows);
    let _ = writeln!(
        out,
        "{:<12} | {:>6.1}/{:<6.1} | {:>6.1}/{:<6.1} | {:>5.1}/{:<5.1} {:>2}/{} | {:>5.1}/{:<5.1} {:>2}/{}",
        "Average",
        s.agrawal_area.0,
        s.agrawal_area.1,
        s.ours_area.0,
        s.ours_area.1,
        s.agrawal_tight.0,
        s.agrawal_tight.1,
        s.agrawal_tight.2,
        s.dies,
        s.ours_tight.0,
        s.ours_tight.1,
        s.ours_tight.2,
        s.dies,
    );
    if s.agrawal_area.1 > 0.0 {
        let _ = writeln!(
            out,
            "Ours(area) inserts {:.2}% of Agrawal's additional cells; paper: 93.99%",
            100.0 * s.ours_area.1 / s.agrawal_area.1
        );
    }
    out
}

//! Wall-clock and deterministic-work probes for `BENCH_<exp>.json`.
//!
//! [`record_fault_sim_speedup`] measures the hottest phase of the flow —
//! PPSFP fault simulation — on the largest selected substrate, once with
//! one thread and once with the parallel pool, asserts the detection
//! masks are bit-identical (the determinism contract), and records the
//! speedup via [`crate::report::record_speedup`]. The measured numbers
//! are whatever the host machine gives: on a single-core container the
//! "parallel" run is oversubscribed and the speedup hovers around 1x;
//! the ≥1.5x target is only observable on multi-core hardware.
//!
//! [`record_work_reductions`] measures the hot-path caches (DESIGN.md
//! §11) in machine-independent units: it runs the probe/cone workload of
//! the largest selected substrate once with `PREBOND3D_NO_CACHE`
//! semantics forced on (the pre-optimization algorithm) and once with
//! the caches enabled, and records the deterministic work counters
//! (`atpg.gate_evals`, `atpg.faults_pruned`, cone word-ops,
//! `probe.cache_*`) via
//! [`crate::report::record_work`]. Unlike the wall-clock speedups these
//! survive `PREBOND3D_STABLE_MS`, so CI regression-gates them.

use std::time::Instant;

use prebond3d_atpg::engine::run_stuck_at;
use prebond3d_atpg::fault::FaultList;
use prebond3d_atpg::faultsim::FaultSimulator;
use prebond3d_atpg::sim::Pattern;
use prebond3d_atpg::{AtpgConfig, TestAccess};
use prebond3d_celllib::{Capacitance, Library};
use prebond3d_netlist::cone::ConeSet;
use prebond3d_netlist::{itc99, tuning, GateId};
use prebond3d_obs as obs;
use prebond3d_place::{place, PlaceConfig};
use prebond3d_pool as pool;
use prebond3d_rng::StdRng;
use prebond3d_sta::whatif::ReuseKind;
use prebond3d_sta::{analyze, analyze_with_extra_loads, StaAnalysis, StaConfig};
use prebond3d_wcm::testability::{AtpgProbe, TestabilityProbe};
use prebond3d_wcm::{clique, graph, MergePolicy, StructuralProbe, Thresholds, TimingModel};

use crate::report;

/// The largest selected substrate: most gates decides, dies within a
/// circuit too.
fn largest_substrate(circuits: &[&str]) -> Option<(String, itc99::DieSpec)> {
    circuits
        .iter()
        .filter_map(|name| itc99::circuit(name))
        .flat_map(|spec| {
            spec.dies
                .into_iter()
                .enumerate()
                .map(move |(i, d)| (spec.name, i, d))
        })
        .max_by_key(|(_, _, d)| d.gates + d.scan_flip_flops)
        .map(|(circuit, die_idx, d)| (format!("{circuit} Die{die_idx}"), d))
}

/// Measure one 64-pattern all-faults-alive batch on the largest die of
/// the largest circuit in `circuits`, serial vs parallel, and record the
/// result via [`report::record_speedup`]. The probe is optional
/// measurement, not a result: if it panics (a chaos injection in the
/// pool worker or die generation, or a genuine mask mismatch), the
/// speedup row is abandoned and a degradation is recorded instead of
/// taking down an otherwise-complete experiment.
pub fn record_fault_sim_speedup(circuits: &[&str]) {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    if let Err(p) = catch_unwind(AssertUnwindSafe(|| probe(circuits))) {
        prebond3d_resilience::degrade::record(
            "perf",
            "skip_probe",
            format!(
                "speedup probe abandoned: {}",
                report::panic_message(p.as_ref())
            ),
        );
    }
}

fn probe(circuits: &[&str]) {
    let Some((substrate, die_spec)) = largest_substrate(circuits) else {
        return;
    };
    let netlist = itc99::generate_die(&die_spec);
    let access = TestAccess::full_scan(&netlist);
    let faults = FaultList::collapsed(&netlist);
    let alive = vec![true; faults.len()];
    let mut rng = StdRng::seed_from_u64(0x5EED_BA5E);
    let patterns: Vec<Pattern> = (0..64)
        .map(|_| Pattern {
            bits: (0..access.width()).map(|_| rng.gen_bool(0.5)).collect(),
        })
        .collect();

    // One batch is sub-millisecond on the small circuits; repeating it
    // inside the timed window keeps thread-spawn overhead from dominating
    // the parallel measurement.
    const REPS: usize = 16;
    let run = |threads: usize| {
        pool::with_threads(threads, || {
            let mut fs = FaultSimulator::new(&netlist);
            let t = Instant::now();
            let mut masks: Vec<u64> = Vec::new();
            for _ in 0..REPS {
                masks = fs
                    .simulate_batch(&netlist, &access, &patterns, &faults.faults, &alive)
                    .unwrap()
                    .to_vec();
            }
            (t.elapsed().as_secs_f64() * 1.0e3, masks)
        })
    };

    let parallel_threads = pool::threads().max(4);
    let _warmup = run(1); // page in the netlist and good machine once
    let (serial_ms, serial_masks) = run(1);
    let (parallel_ms, parallel_masks) = run(parallel_threads);
    assert_eq!(
        serial_masks, parallel_masks,
        "fault-sim masks must be bit-identical across thread counts"
    );
    report::record_speedup(
        "fault_simulation",
        &substrate,
        parallel_threads,
        serial_ms,
        parallel_ms,
    );
}

/// One reference-vs-optimized run of the ATPG probe workload, in
/// deterministic work units (no clocks involved).
struct WorkSample {
    gate_evals: u64,
    cache_hits: u64,
    cache_misses: u64,
    faults_pruned: u64,
}

/// Optimized-mode counters of the wide-lane fault-sim probe, re-emitted
/// into the run report's work-probe section.
struct LanesSample {
    gate_evals: u64,
    pattern_batches: u64,
}

/// Measure the deterministic work counters of the hot paths (DESIGN.md
/// §11) on the largest selected substrate, once with the caches forced
/// off (the pre-optimization reference algorithm) and once with them on,
/// and record each counter via [`report::record_work`]. Like the
/// wall-clock probe this is optional measurement: a panic records a
/// degradation instead of failing the experiment, and the no-cache
/// override is always restored.
pub fn record_work_reductions(circuits: &[&str]) {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let result = catch_unwind(AssertUnwindSafe(|| work_probe(circuits)));
    tuning::force_no_cache(None);
    tuning::force_lanes(None);
    if let Err(p) = result {
        prebond3d_resilience::degrade::record(
            "perf",
            "skip_work_probe",
            format!(
                "work-reduction probe abandoned: {}",
                report::panic_message(p.as_ref())
            ),
        );
    }
}

/// Reference-mode ATPG probing runs full-universe ATPG four times per
/// pair — the pre-optimization cost this probe exists to expose. That is
/// minutes-to-hours on the b18/b22 dies, so the ATPG portion measures the
/// largest substrate at or below this node count (the cone/clique portion
/// still runs on the overall largest).
const ATPG_PROBE_MAX_NODES: usize = 2_000;

/// The largest selected substrate whose die is small enough for the
/// reference-mode (uncached, full-universe) ATPG probe.
fn atpg_probe_substrate(circuits: &[&str]) -> Option<(String, itc99::DieSpec)> {
    circuits
        .iter()
        .filter_map(|name| itc99::circuit(name))
        .flat_map(|spec| {
            spec.dies
                .into_iter()
                .enumerate()
                .map(move |(i, d)| (spec.name, i, d))
        })
        .filter(|(_, _, d)| d.gates + d.scan_flip_flops <= ATPG_PROBE_MAX_NODES)
        .max_by_key(|(_, _, d)| d.gates + d.scan_flip_flops)
        .map(|(circuit, die_idx, d)| (format!("{circuit} Die{die_idx}"), d))
}

fn work_probe(circuits: &[&str]) {
    let Some((substrate, die_spec)) = largest_substrate(circuits) else {
        return;
    };

    // --- Cone/clique workload on the largest substrate -------------------
    // One sharing-graph build + clique partition per mode: the build's
    // all-pairs cone scan tallies `graph.cone_word_ops`, the partition's
    // merge loop `clique.candidate_rescores`. `obs::capture` gives an
    // isolated registry, so the counters read are exactly this workload's.
    let netlist = itc99::generate_die(&die_spec);
    let placement = place(&netlist, &PlaceConfig::default(), 1);
    let library = Library::default();
    let sta = analyze(&netlist, &placement, &library, &StaConfig::relaxed());
    let model = TimingModel::new(&netlist, &placement, &library, &sta, &sta, true);
    let thresholds = Thresholds::area_optimized(&library);
    let ffs = netlist.flip_flops();
    let tsvs = netlist.inbound_tsvs();

    let cone_clique_mode = |no_cache: bool| -> (u64, u64) {
        tuning::force_no_cache(Some(no_cache));
        let (_, snap) = obs::capture(|| {
            let g = graph::build(
                &model,
                &thresholds,
                &StructuralProbe::default(),
                &ffs,
                &tsvs,
                ReuseKind::Inbound,
            );
            let _partition = clique::partition(&g, &model, &thresholds, MergePolicy::Accurate);
        });
        tuning::force_no_cache(None);
        (
            snap.counter("graph.cone_word_ops"),
            snap.counter("clique.candidate_rescores"),
        )
    };
    let (ref_word_ops, ref_rescores) = cone_clique_mode(true);
    let (opt_word_ops, opt_rescores) = cone_clique_mode(false);

    // --- ATPG probe workload on a reference-tractable substrate ----------
    let atpg = atpg_probe_substrate(circuits).map(|(atpg_substrate, atpg_spec)| {
        // Reuse the already-generated die when the caps coincide.
        let atpg_netlist = if atpg_substrate == substrate {
            None
        } else {
            Some(itc99::generate_die(&atpg_spec))
        };
        let atpg_netlist = atpg_netlist.as_ref().unwrap_or(&netlist);
        let ffs = atpg_netlist.flip_flops();
        let tsvs = atpg_netlist.inbound_tsvs();
        let mut roots: Vec<GateId> = ffs.clone();
        roots.extend(tsvs.iter().copied());

        // Up to three overlapping (flip-flop, TSV) pairs, selected once
        // outside the measured runs so both modes price the same pairs.
        let selection = ConeSet::compute(atpg_netlist, &roots);
        let mut pairs: Vec<(GateId, GateId)> = Vec::new();
        'outer: for &t in &tsvs {
            for &f in &ffs {
                if selection.cones_overlap(f, t) {
                    pairs.push((f, t));
                    if pairs.len() == 3 {
                        break 'outer;
                    }
                }
            }
        }

        // Two passes over the pairs (the second is where memoization
        // pays), then one full-universe ATPG run on the bare die: the
        // floating TSVs leave X cones whose faults the dataflow pruning
        // (DESIGN.md §14) retires before any simulation. Reference mode
        // (`no_cache`) disables pruning, so the `atpg.gate_evals` delta
        // includes the retired faults' cone resimulations.
        let atpg_mode = |no_cache: bool| -> (WorkSample, prebond3d_atpg::AtpgResult) {
            tuning::force_no_cache(Some(no_cache));
            // Pin the lane width so the recorded counters are invariant to
            // an ambient `PREBOND3D_LANES` (the CI perf-smoke matrix sweeps
            // it against one checked-in baseline). `no_cache` already forces
            // single-lane; the optimized mode measures the full-width path.
            tuning::force_lanes(Some(if no_cache { 1 } else { 8 }));
            let (result, snap) = obs::capture(|| {
                let cones = ConeSet::compute(atpg_netlist, &roots);
                let probe = AtpgProbe::default();
                for _pass in 0..2 {
                    for &(a, b) in &pairs {
                        let _ = probe.sharing_cost(atpg_netlist, &cones, a, b);
                    }
                }
                let access = TestAccess::full_scan(atpg_netlist);
                run_stuck_at(atpg_netlist, &access, &AtpgConfig::fast())
            });
            tuning::force_no_cache(None);
            tuning::force_lanes(None);
            let sample = WorkSample {
                gate_evals: snap.counter("atpg.gate_evals"),
                cache_hits: snap.counter("probe.cache_hits"),
                cache_misses: snap.counter("probe.cache_misses"),
                faults_pruned: snap.counter("atpg.faults_pruned"),
            };
            (sample, result)
        };
        let (reference, ref_result) = atpg_mode(true);
        let (optimized, opt_result) = atpg_mode(false);
        assert_eq!(
            ref_result, opt_result,
            "pruned ATPG must be byte-identical to the unpruned reference"
        );

        // --- Wide-lane fault-sim probe -------------------------------
        // The same 512-pattern full-universe workload at lane width 1
        // (the straight-line oracle) and 8: per-64-block detection masks
        // must agree bit-for-bit, while the wide run amortizes each cone
        // walk over 8x the patterns. The windows are sized explicitly, so
        // the recorded counters ignore any ambient `PREBOND3D_LANES`.
        let access = TestAccess::full_scan(atpg_netlist);
        let faults = FaultList::collapsed(atpg_netlist);
        let alive = vec![true; faults.len()];
        let mut rng = StdRng::seed_from_u64(0x1A5E_BA5E);
        let wide_patterns: Vec<Pattern> = (0..512)
            .map(|_| Pattern {
                bits: (0..access.width()).map(|_| rng.gen_bool(0.5)).collect(),
            })
            .collect();
        let total_blocks = wide_patterns.len().div_ceil(64);
        let lanes_mode = |width: usize| -> (u64, u64, Vec<u64>) {
            let (blocks, snap) = obs::capture(|| {
                let mut fs = FaultSimulator::new(atpg_netlist);
                // Per-64-block masks, re-indexed block-major/fault-minor
                // so the flattening is width-independent.
                let mut blocks = vec![0u64; total_blocks * faults.len()];
                for (win, window) in wide_patterns.chunks(width * 64).enumerate() {
                    let (w, masks) = fs
                        .simulate_batch_wide(
                            atpg_netlist,
                            &access,
                            window,
                            &faults.faults,
                            &alive,
                        )
                        .expect("probe window sized to lane capacity");
                    let win_blocks = window.len().div_ceil(64);
                    for f in 0..faults.len() {
                        for b in 0..win_blocks {
                            blocks[(win * width + b) * faults.len() + f] = masks[f * w + b];
                        }
                    }
                }
                blocks
            });
            (
                snap.counter("atpg.gate_evals"),
                snap.counter("atpg.pattern_batches"),
                blocks,
            )
        };
        let (w1_evals, w1_batches, w1_blocks) = lanes_mode(1);
        let (w8_evals, w8_batches, w8_blocks) = lanes_mode(8);
        assert_eq!(
            w1_blocks, w8_blocks,
            "wide-lane detection masks must be bit-identical to single-lane"
        );
        assert!(
            w8_evals * 3 <= w1_evals,
            "wide lanes must amortize >= 3x: {w1_evals} evals at W=1 vs {w8_evals} at W=8"
        );
        let lanes_substrate = format!("{atpg_substrate} wide lanes");
        report::record_work("atpg.gate_evals", &lanes_substrate, w1_evals, w8_evals);
        report::record_work("atpg.pattern_batches", &lanes_substrate, w1_batches, w8_batches);
        let lanes = LanesSample {
            gate_evals: w8_evals,
            pattern_batches: w8_batches,
        };

        (atpg_substrate, reference, optimized, lanes)
    });
    if atpg.is_none() {
        eprintln!(
            "perf: no selected substrate has <= {ATPG_PROBE_MAX_NODES} nodes; \
             ATPG work probe skipped (cone/clique counters still recorded)"
        );
    }

    if let Some((atpg_substrate, reference, optimized, _)) = &atpg {
        report::record_work(
            "atpg.gate_evals",
            atpg_substrate,
            reference.gate_evals,
            optimized.gate_evals,
        );
        report::record_work(
            "probe.cache_hits",
            atpg_substrate,
            reference.cache_hits,
            optimized.cache_hits,
        );
        report::record_work(
            "probe.cache_misses",
            atpg_substrate,
            reference.cache_misses,
            optimized.cache_misses,
        );
        // Reference mode never prunes, so the row reads 0 → N: obs-diff
        // floor-gates the optimized count (a shrink means the static
        // analysis stopped seeing the X cones).
        report::record_work(
            "atpg.faults_pruned",
            atpg_substrate,
            reference.faults_pruned,
            optimized.faults_pruned,
        );
    }
    report::record_work(
        "graph.cone_word_ops",
        &substrate,
        ref_word_ops,
        opt_word_ops,
    );
    report::record_work(
        "clique.candidate_rescores",
        &substrate,
        ref_rescores,
        opt_rescores,
    );

    // --- Incremental STA what-if probe -----------------------------------
    // A seeded sweep of single-net extra-load queries on the largest
    // substrate: the reference prices each query with a from-scratch
    // analysis (3n node visits per query), the optimized path keeps one
    // live `StaAnalysis` and retimes only the frontier. The reports must
    // be bitwise-identical per query.
    let sta_config = StaConfig::relaxed();
    let mut rng = StdRng::seed_from_u64(0x57A7_1C4E);
    let queries: Vec<(GateId, Capacitance)> = (0..6)
        .map(|_| {
            (
                GateId(rng.gen_range(0..netlist.len() as u32)),
                Capacitance(rng.gen_range(1u32..40) as f64 / 4.0),
            )
        })
        .collect();
    let (ref_reports, ref_snap) = obs::capture(|| {
        queries
            .iter()
            .map(|&(id, c)| {
                analyze_with_extra_loads(
                    &netlist,
                    &placement,
                    &library,
                    &sta_config,
                    &[],
                    &[(id, c)],
                )
            })
            .collect::<Vec<_>>()
    });
    let ref_visits = ref_snap.counter("sta.nodes_visited");
    let (opt_reports, opt_snap) = obs::capture(|| {
        let mut inc = StaAnalysis::new(&netlist, &placement, &library, &sta_config, &[]);
        queries
            .iter()
            .map(|&(id, c)| {
                inc.set_extra_load(id, c);
                let report = inc.report();
                inc.set_extra_load(id, Capacitance::ZERO);
                report
            })
            .collect::<Vec<_>>()
    });
    assert_eq!(
        ref_reports, opt_reports,
        "incremental what-if timing must match the full-recompute oracle bitwise"
    );
    let node_retimes = opt_snap.counter("sta.node_retimes");
    assert!(
        node_retimes < ref_visits,
        "frontier retimes ({node_retimes}) must undercut full recomputes ({ref_visits})"
    );
    report::record_work("sta.node_retimes", &substrate, ref_visits, node_retimes);

    // Re-emit the optimized-mode counters into the run report (the
    // captures above kept them out of the experiment's collector), so
    // `run_perf.json` carries the cache hit/miss counters in a section.
    report::die_scope(&format!("{substrate} work probe"), || {
        obs::count("graph.cone_word_ops", opt_word_ops);
        obs::count("clique.candidate_rescores", opt_rescores);
        obs::count("sta.node_retimes", node_retimes);
        if let Some((_, _, optimized, lanes)) = &atpg {
            obs::count("atpg.gate_evals", optimized.gate_evals + lanes.gate_evals);
            obs::count("atpg.pattern_batches", lanes.pattern_batches);
            obs::count("probe.cache_hits", optimized.cache_hits);
            obs::count("probe.cache_misses", optimized.cache_misses);
            obs::count("atpg.faults_pruned", optimized.faults_pruned);
        }
    });
}

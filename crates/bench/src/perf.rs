//! Serial-vs-parallel wall-clock probes for `BENCH_<exp>.json`.
//!
//! [`record_fault_sim_speedup`] measures the hottest phase of the flow —
//! PPSFP fault simulation — on the largest selected substrate, once with
//! one thread and once with the parallel pool, asserts the detection
//! masks are bit-identical (the determinism contract), and records the
//! speedup via [`crate::report::record_speedup`]. The measured numbers
//! are whatever the host machine gives: on a single-core container the
//! "parallel" run is oversubscribed and the speedup hovers around 1x;
//! the ≥1.5x target is only observable on multi-core hardware.

use std::time::Instant;

use prebond3d_atpg::fault::FaultList;
use prebond3d_atpg::faultsim::FaultSimulator;
use prebond3d_atpg::sim::Pattern;
use prebond3d_atpg::TestAccess;
use prebond3d_netlist::itc99;
use prebond3d_pool as pool;
use prebond3d_rng::StdRng;

use crate::report;

/// Measure one 64-pattern all-faults-alive batch on the largest die of
/// the largest circuit in `circuits`, serial vs parallel, and record the
/// result via [`report::record_speedup`]. The probe is optional
/// measurement, not a result: if it panics (a chaos injection in the
/// pool worker or die generation, or a genuine mask mismatch), the
/// speedup row is abandoned and a degradation is recorded instead of
/// taking down an otherwise-complete experiment.
pub fn record_fault_sim_speedup(circuits: &[&str]) {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    if let Err(p) = catch_unwind(AssertUnwindSafe(|| probe(circuits))) {
        prebond3d_resilience::degrade::record(
            "perf",
            "skip_probe",
            format!(
                "speedup probe abandoned: {}",
                report::panic_message(p.as_ref())
            ),
        );
    }
}

fn probe(circuits: &[&str]) {
    // Largest substrate: most gates decides, dies within a circuit too.
    let largest = circuits
        .iter()
        .filter_map(|name| itc99::circuit(name))
        .flat_map(|spec| {
            spec.dies
                .into_iter()
                .enumerate()
                .map(move |(i, d)| (spec.name, i, d))
        })
        .max_by_key(|(_, _, d)| d.gates + d.scan_flip_flops);
    let Some((circuit, die_idx, die_spec)) = largest else {
        return;
    };
    let substrate = format!("{circuit} Die{die_idx}");
    let netlist = itc99::generate_die(&die_spec);
    let access = TestAccess::full_scan(&netlist);
    let faults = FaultList::collapsed(&netlist);
    let alive = vec![true; faults.len()];
    let mut rng = StdRng::seed_from_u64(0x5EED_BA5E);
    let patterns: Vec<Pattern> = (0..64)
        .map(|_| Pattern {
            bits: (0..access.width()).map(|_| rng.gen_bool(0.5)).collect(),
        })
        .collect();

    // One batch is sub-millisecond on the small circuits; repeating it
    // inside the timed window keeps thread-spawn overhead from dominating
    // the parallel measurement.
    const REPS: usize = 16;
    let run = |threads: usize| {
        pool::with_threads(threads, || {
            let mut fs = FaultSimulator::new(&netlist);
            let t = Instant::now();
            let mut masks = Vec::new();
            for _ in 0..REPS {
                masks = fs.simulate_batch(&netlist, &access, &patterns, &faults.faults, &alive);
            }
            (t.elapsed().as_secs_f64() * 1.0e3, masks)
        })
    };

    let parallel_threads = pool::threads().max(4);
    let _warmup = run(1); // page in the netlist and good machine once
    let (serial_ms, serial_masks) = run(1);
    let (parallel_ms, parallel_masks) = run(parallel_threads);
    assert_eq!(
        serial_masks, parallel_masks,
        "fault-sim masks must be bit-identical across thread counts"
    );
    report::record_speedup(
        "fault_simulation",
        &substrate,
        parallel_threads,
        serial_ms,
        parallel_ms,
    );
}

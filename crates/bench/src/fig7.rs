//! Fig. 7: graph-edge growth from allowing overlapped cones.
//!
//! Builds both sharing graphs (without and with overlapped-cone edges)
//! under the performance-optimized scenario and reports the per-circuit
//! edge-count increase; the paper measures +2.83 % on average.

use std::fmt::Write as _;

use prebond3d_obs::json::Value;
use prebond3d_wcm::flow::{FlowConfig, Method, Scenario};

use crate::context;

/// One circuit's edge counts (summed over dies and both phases).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Circuit name.
    pub circuit: &'static str,
    /// Edges with overlapped-cone sharing disabled.
    pub edges_without: usize,
    /// Edges with overlapped-cone sharing enabled.
    pub edges_with: usize,
}

impl Row {
    /// Percentage growth of the solution space.
    pub fn growth_pct(&self) -> f64 {
        if self.edges_without == 0 {
            return 0.0;
        }
        100.0 * (self.edges_with as f64 - self.edges_without as f64) / self.edges_without as f64
    }
}

/// Run over the selected circuits; dies run on the pool, per-circuit
/// sums fold over the submission-ordered results.
pub fn run() -> Vec<Row> {
    let lib = context::library();
    let mut rows = Vec::new();
    for name in context::circuit_names() {
        let cases = context::load_circuit(name);
        let per_die = crate::report::resilient_par_die_scopes(
            "fig7",
            &cases,
            crate::DieCase::label,
            |case| {
                let mut w = 0usize;
                let mut wo = 0usize;
                for allow in [false, true] {
                    let config = FlowConfig {
                        method: Method::Ours,
                        scenario: Scenario::Tight,
                        ordering: None,
                        allow_overlap: Some(allow),
                    };
                    let r = crate::lintflow::checked_run_flow(
                        &case.label(),
                        &case.netlist,
                        &case.placement,
                        &lib,
                        &config,
                    )
                    .expect("flow runs and lints clean");
                    let edges: usize = r.phases.iter().map(|p| p.edges).sum();
                    if allow {
                        w += edges;
                    } else {
                        wo += edges;
                    }
                }
                (w, wo)
            },
            |&(w, wo)| Value::obj([("with", w.into()), ("without", wo.into())]),
            |v| {
                Some((
                    v.get("with")?.as_u64()? as usize,
                    v.get("without")?.as_u64()? as usize,
                ))
            },
        );
        let (with, without) = per_die
            .into_iter()
            .flatten()
            .fold((0, 0), |(aw, awo), (w, wo)| (aw + w, awo + wo));
        rows.push(Row {
            circuit: name,
            edges_without: without,
            edges_with: with,
        });
    }
    rows
}

/// Render as a text bar chart.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 7 — sharing-graph edges gained by allowing overlapped cones"
    );
    for r in rows {
        let pct = r.growth_pct();
        let bar = "#".repeat((pct * 4.0).round().max(0.0) as usize);
        let _ = writeln!(
            out,
            "{:<5} {:>7} → {:>7} edges  {:>6.2}% {}",
            r.circuit, r.edges_without, r.edges_with, pct, bar
        );
    }
    let n = rows.len().max(1) as f64;
    let avg = rows.iter().map(Row::growth_pct).sum::<f64>() / n;
    let _ = writeln!(out, "average growth: {avg:.2}% (paper: +2.83%)");
    out
}

//! Table V: the overlapped-cone ablation (b20/b21/b22, tight timing).
//!
//! Our method with overlapped-cone sharing disabled vs. enabled: reused
//! flip-flops, additional wrapper cells, stuck-at and transition coverage
//! and pattern counts. The paper's claim: sharing with overlapped cones
//! saves ~2 % of additional cells at a fraction-of-a-percent coverage
//! cost.

use std::fmt::Write as _;

use prebond3d_atpg::engine::{run_stuck_at, run_transition, AtpgConfig};
use prebond3d_dft::prebond_access;
use prebond3d_obs::json::Value;
use prebond3d_wcm::flow::{FlowConfig, Method, Scenario};

use crate::context::{self, DieCase};
use crate::lintflow::checked_run_flow;

/// Numbers for one overlap setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Reused scan flip-flops.
    pub reused: usize,
    /// Additional wrapper cells.
    pub additional: usize,
    /// Stuck-at (coverage, patterns).
    pub stuck_at: (f64, usize),
    /// Transition (coverage, patterns).
    pub transition: (f64, usize),
}

impl Cell {
    fn to_json(self) -> Value {
        let pair = |(cov, patterns): (f64, usize)| {
            Value::obj([("coverage", cov.into()), ("patterns", patterns.into())])
        };
        Value::obj([
            ("reused", self.reused.into()),
            ("additional", self.additional.into()),
            ("stuck_at", pair(self.stuck_at)),
            ("transition", pair(self.transition)),
        ])
    }

    fn from_json(v: &Value) -> Option<Cell> {
        let pair = |v: &Value| {
            Some((
                v.get("coverage")?.as_f64()?,
                v.get("patterns")?.as_u64()? as usize,
            ))
        };
        Some(Cell {
            reused: v.get("reused")?.as_u64()? as usize,
            additional: v.get("additional")?.as_u64()? as usize,
            stuck_at: pair(v.get("stuck_at")?)?,
            transition: pair(v.get("transition")?)?,
        })
    }
}

/// One die row.
#[derive(Debug, Clone)]
pub struct Row {
    /// `"b21 Die2"`.
    pub label: String,
    /// Overlapped-cone sharing disabled.
    pub no_overlap: Cell,
    /// Overlapped-cone sharing enabled.
    pub overlap: Cell,
}

impl Row {
    /// Checkpoint codec: serialize for the resume log.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("label", self.label.as_str().into()),
            ("no_overlap", self.no_overlap.to_json()),
            ("overlap", self.overlap.to_json()),
        ])
    }

    /// Checkpoint codec: revive a row from the resume log.
    pub fn from_json(v: &Value) -> Option<Row> {
        Some(Row {
            label: v.get("label")?.as_str()?.to_string(),
            no_overlap: Cell::from_json(v.get("no_overlap")?)?,
            overlap: Cell::from_json(v.get("overlap")?)?,
        })
    }
}

fn measure(case: &DieCase, allow_overlap: bool, atpg: &AtpgConfig) -> Cell {
    let lib = context::library();
    let config = FlowConfig {
        method: Method::Ours,
        scenario: Scenario::Tight,
        ordering: None,
        allow_overlap: Some(allow_overlap),
    };
    let r = checked_run_flow(&case.label(), &case.netlist, &case.placement, &lib, &config)
        .expect("flow runs and lints clean");
    let access = prebond_access(&r.testable);
    // Huge dies get size-scaled deterministic effort (PODEM implication is
    // linear in gate count, so the b18 dies would otherwise dominate).
    let scaled = AtpgConfig::scaled_for(r.testable.netlist.len());
    let atpg = if r.testable.netlist.len() > 15_000 {
        &scaled
    } else {
        atpg
    };
    let sa = run_stuck_at(&r.testable.netlist, &access, atpg);
    let tr = run_transition(&r.testable.netlist, &access, atpg);
    Cell {
        reused: r.reused_scan_ffs,
        additional: r.additional_wrapper_cells,
        stuck_at: (sa.test_coverage(), sa.pattern_count()),
        transition: (tr.test_coverage(), tr.pattern_count()),
    }
}

/// Run for one die.
pub fn run_die(case: &DieCase, atpg: &AtpgConfig) -> Row {
    Row {
        label: case.label(),
        no_overlap: measure(case, false, atpg),
        overlap: measure(case, true, atpg),
    }
}

/// The paper's Table V circuits, intersected with the selection; one pool
/// worker per die.
pub fn run(atpg: &AtpgConfig) -> Vec<Row> {
    let names: Vec<&'static str> = context::circuit_names()
        .into_iter()
        .filter(|n| matches!(*n, "b20" | "b21" | "b22"))
        .collect();
    let cases = context::load_circuits(&names);
    crate::report::resilient_par_die_scopes(
        "table5",
        &cases,
        DieCase::label,
        |case| run_die(case, atpg),
        Row::to_json,
        Row::from_json,
    )
    .into_iter()
    .flatten()
    .collect()
}

/// Render paper-style.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table V — with/without overlapped fan-in/fan-out cones (tight timing)"
    );
    let _ = writeln!(
        out,
        "{:<12} | {:>4} {:>5} {:>16} {:>16} | {:>4} {:>5} {:>16} {:>16}",
        "",
        "FF",
        "cells",
        "no-ovl stuck-at",
        "no-ovl trans",
        "FF",
        "cells",
        "ovl stuck-at",
        "ovl trans"
    );
    let c = |x: (f64, usize)| format!("({}, {})", crate::pct(x.0), x.1);
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} | {:>4} {:>5} {:>16} {:>16} | {:>4} {:>5} {:>16} {:>16}",
            r.label,
            r.no_overlap.reused,
            r.no_overlap.additional,
            c(r.no_overlap.stuck_at),
            c(r.no_overlap.transition),
            r.overlap.reused,
            r.overlap.additional,
            c(r.overlap.stuck_at),
            c(r.overlap.transition),
        );
    }
    let n = rows.len().max(1) as f64;
    let no_cells = rows
        .iter()
        .map(|r| r.no_overlap.additional as f64)
        .sum::<f64>()
        / n;
    let ov_cells = rows
        .iter()
        .map(|r| r.overlap.additional as f64)
        .sum::<f64>()
        / n;
    let no_ff = rows.iter().map(|r| r.no_overlap.reused as f64).sum::<f64>() / n;
    let ov_ff = rows.iter().map(|r| r.overlap.reused as f64).sum::<f64>() / n;
    let _ = writeln!(
        out,
        "Average: reused {no_ff:.2} → {ov_ff:.2} ({:+.2}%), additional {no_cells:.2} → {ov_cells:.2} ({:+.2}%); paper: +0.90% / −2.02%",
        100.0 * (ov_ff - no_ff) / no_ff.max(1e-9),
        100.0 * (ov_cells - no_cells) / no_cells.max(1e-9),
    );
    out
}

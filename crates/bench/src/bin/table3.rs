//! Regenerate the paper's Table III.
use prebond3d_bench::report;

fn main() {
    report::begin("table3");
    let rows = prebond3d_bench::table3::run();
    print!("{}", prebond3d_bench::table3::render(&rows));
    prebond3d_bench::perf::record_fault_sim_speedup(&prebond3d_bench::circuit_names());
    report::finish();
}

//! Regenerate the paper's Table III.
fn main() {
    let rows = prebond3d_bench::table3::run();
    print!("{}", prebond3d_bench::table3::render(&rows));
}

//! Regenerate the paper's Table III.
use std::process::ExitCode;

use prebond3d_bench::driver;

fn main() -> ExitCode {
    driver::run("table3", || {
        let rows = prebond3d_bench::table3::run();
        print!("{}", prebond3d_bench::table3::render(&rows));
        prebond3d_bench::perf::record_fault_sim_speedup(&prebond3d_bench::circuit_names());
        Ok(())
    })
}

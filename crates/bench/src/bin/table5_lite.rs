//! Table V hardware columns only (no ATPG): reused FFs and additional
//! wrapper cells with overlapped-cone sharing off/on, tight timing.
use std::process::ExitCode;

use prebond3d_bench::lintflow::checked_run_flow;
use prebond3d_bench::{context, driver, report};
use prebond3d_wcm::flow::{FlowConfig, Method, Scenario};

fn main() -> ExitCode {
    driver::run("table5_lite", || {
        let lib = context::library();
        println!(
            "{:<12} | {:>7} {:>7} | {:>7} {:>7}",
            "", "FF(off)", "cells", "FF(on)", "cells"
        );
        let (mut f0, mut c0, mut f1, mut c1) = (0usize, 0usize, 0usize, 0usize);
        let mut dies = 0usize;
        for name in context::circuit_names() {
            for case in context::load_circuit(name) {
                let row = report::die_scope(&case.label(), || {
                    let mut row = Vec::new();
                    for allow in [false, true] {
                        let cfg = FlowConfig {
                            method: Method::Ours,
                            scenario: Scenario::Tight,
                            ordering: None,
                            allow_overlap: Some(allow),
                        };
                        let r = checked_run_flow(
                            &case.label(),
                            &case.netlist,
                            &case.placement,
                            &lib,
                            &cfg,
                        )?;
                        row.push((r.reused_scan_ffs, r.additional_wrapper_cells));
                    }
                    Ok::<_, prebond3d_wcm::flow::FlowError>(row)
                })?;
                println!(
                    "{:<12} | {:>7} {:>7} | {:>7} {:>7}",
                    case.label(),
                    row[0].0,
                    row[0].1,
                    row[1].0,
                    row[1].1
                );
                f0 += row[0].0;
                c0 += row[0].1;
                f1 += row[1].0;
                c1 += row[1].1;
                dies += 1;
            }
        }
        let d = dies.max(1) as f64;
        println!(
            "Average      | {:>7.1} {:>7.1} | {:>7.1} {:>7.1}",
            f0 as f64 / d,
            c0 as f64 / d,
            f1 as f64 / d,
            c1 as f64 / d
        );
        println!(
            "overlap effect: reused {:+.2}%, additional {:+.2}%; paper: +0.90% / -2.02%",
            100.0 * (f1 as f64 - f0 as f64) / (f0 as f64).max(1.0),
            100.0 * (c1 as f64 - c0 as f64) / (c0 as f64).max(1.0)
        );
        Ok(())
    })
}

//! `prebond3d-loadgen` — replay a seeded multi-client job mix against a
//! `prebond3d-serve` daemon and write `results/BENCH_serve.json`.
//!
//! Usage:
//! `prebond3d-loadgen [--addr HOST:PORT] [--clients N] [--jobs N]
//!  [--seed N] [--shutdown] [--daemon-bin PATH]`
//!
//! Without `--addr` an in-process daemon is spawned (and shut down) for
//! the run. The daemon must be cold: the priming pass is what produces
//! the gated `serve.cache_misses` measurement and the cold latency
//! histogram. With `--daemon-bin` pointing at a `prebond3d-serve`
//! binary, the external kill-and-recover phase also runs: the loadgen
//! spawns the daemon with `--journal`, SIGKILLs it mid-mix, restarts
//! it, and asserts every accepted job drains exactly once.
//!
//! Exit codes: 0 contract held, 1 contract violated (a job failed, no
//! cache hits, warm p50 did not beat cold p50, or the
//! backpressure/recovery contract broke), 2 usage/connection error.

use prebond3d_bench::loadgen::{self, LoadgenConfig};

fn usage() -> ! {
    eprintln!(
        "usage: prebond3d-loadgen [--addr HOST:PORT] [--clients N] [--jobs N] \
         [--seed N] [--shutdown] [--daemon-bin PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = LoadgenConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = Some(value("--addr")),
            "--clients" => match value("--clients").parse() {
                Ok(n) if n > 0 => config.clients = n,
                _ => usage(),
            },
            "--jobs" => match value("--jobs").parse() {
                Ok(n) if n > 0 => config.jobs_per_client = n,
                _ => usage(),
            },
            "--seed" => match value("--seed").parse() {
                Ok(n) => config.seed = n,
                Err(_) => usage(),
            },
            "--shutdown" => config.shutdown = true,
            "--daemon-bin" => {
                config.daemon_bin = Some(std::path::PathBuf::from(value("--daemon-bin")));
            }
            _ => usage(),
        }
    }
    match loadgen::run(&config) {
        Ok(s) => {
            println!(
                "loadgen: {} jobs, {} hits / {} misses, cold p50 {:.2} ms, \
                 warm p50 {:.2} ms, {} shed, {} recovered ({} after kill) -> {}",
                s.jobs,
                s.hits,
                s.misses,
                s.cold_p50_ms,
                s.warm_p50_ms,
                s.shed,
                s.recovered,
                s.kill_recovered,
                s.report_path.display()
            );
        }
        Err(e) => {
            eprintln!("loadgen: {e}");
            // Connection-level failures are usage-ish (2); contract
            // violations are regressions (1).
            let code = if e.contains("connect") || e.contains("spawn daemon") {
                2
            } else {
                1
            };
            std::process::exit(code);
        }
    }
}

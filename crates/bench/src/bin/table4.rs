//! Regenerate the paper's Table IV (coverage/pattern comparison).
use std::process::ExitCode;

use prebond3d_atpg::engine::AtpgConfig;
use prebond3d_bench::driver;

fn main() -> ExitCode {
    driver::run("table4", || {
        let rows = prebond3d_bench::table4::run(&AtpgConfig::thorough());
        print!("{}", prebond3d_bench::table4::render(&rows));
        prebond3d_bench::perf::record_fault_sim_speedup(&prebond3d_bench::circuit_names());
        Ok(())
    })
}

//! Regenerate the paper's Table II (benchmark characteristics).
use prebond3d_bench::report;

fn main() {
    report::begin("table2");
    let rows = prebond3d_bench::table2::run();
    print!("{}", prebond3d_bench::table2::render(&rows));
    report::finish();
}

//! Regenerate the paper's Table II (benchmark characteristics).
fn main() {
    let rows = prebond3d_bench::table2::run();
    print!("{}", prebond3d_bench::table2::render(&rows));
}

//! Regenerate the paper's Table II (benchmark characteristics).
use std::process::ExitCode;

use prebond3d_bench::driver;

fn main() -> ExitCode {
    driver::run("table2", || {
        let rows = prebond3d_bench::table2::run();
        print!("{}", prebond3d_bench::table2::render(&rows));
        Ok(())
    })
}

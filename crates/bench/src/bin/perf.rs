//! `prebond3d-perf` — the hot-path performance experiment.
//!
//! Runs the two perf probes on the selected circuits (all of them by
//! default; narrow with `PREBOND3D_CIRCUITS`): the deterministic
//! work-reduction probe (cache reference vs optimized, counted in
//! gate-evals / cone word-ops / candidate rescores — machine-independent,
//! CI regression-gates these) and the wall-clock fault-simulation speedup
//! probe. Results land in `results/BENCH_perf.json` under `work` and
//! `speedup`.

use std::process::ExitCode;

use prebond3d_bench::{driver, perf};

fn main() -> ExitCode {
    driver::run("perf", || {
        let names = prebond3d_bench::circuit_names();
        perf::record_work_reductions(&names);
        perf::record_fault_sim_speedup(&names);
        Ok(())
    })
}

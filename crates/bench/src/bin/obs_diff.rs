//! `obs-diff` — compare two run/BENCH reports and gate regressions.
//!
//! Usage: `obs-diff [--threshold <pct>] <baseline.json> <current.json>`
//!
//! Exit codes: 0 clean, 1 at least one gated regression, 2 usage or
//! parse error.

use prebond3d_bench::obsdiff;
use prebond3d_obs::json::Value;

fn usage() -> ! {
    eprintln!("usage: obs-diff [--threshold <pct>] <baseline.json> <current.json>");
    std::process::exit(2);
}

fn load(path: &str) -> Value {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs-diff: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match prebond3d_obs::json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("obs-diff: {path} is not valid report JSON: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut threshold = 20.0f64;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                    usage();
                };
                threshold = v;
            }
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => paths.push(arg),
        }
    }
    if paths.len() != 2 {
        usage();
    }

    let base = load(&paths[0]);
    let current = load(&paths[1]);
    let report = obsdiff::diff(&base, &current, threshold);
    print!("{}", obsdiff::render(&report));
    if report.regressed() {
        eprintln!("obs-diff: regression against {}", paths[0]);
        std::process::exit(1);
    }
}

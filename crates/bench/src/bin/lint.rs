//! `prebond3d-lint` — run the static-analysis pipeline over the seed
//! benchmarks and any run reports on disk.
//!
//! Per selected die (see `PREBOND3D_CIRCUITS`), three staged contexts:
//!
//! 1. **netlist** — structure checks on the generated die;
//! 2. **scan** — chain connectivity after scan insertion;
//! 3. **flow** — the full Fig. 6 flow (Ours, both scenarios) at deep
//!    depth: wrapper wiring, TSV coverage with cone-overlap rationale,
//!    timing-model sanity, post-insertion slack and mission-mode
//!    co-simulation.
//!
//! Afterwards, every `run_*.json` / `BENCH_*.json` in the report
//! directory is schema-checked. Findings print human-readably; the full
//! set is written to `results/lint_<exp>.json` (directory overridable via
//! `PREBOND3D_REPORT_DIR`, experiment name via the first CLI argument,
//! default `full`). `--sarif <path>` additionally writes the findings as
//! a SARIF 2.1.0 document for code-review/CI ingestion. Exit code 1 when
//! any Error-severity finding survives, 3 when a die paniced while being
//! audited and the rest carried on.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::ExitCode;

use prebond3d_bench::{context, driver, lintflow};
use prebond3d_dft::insert_scan;
use prebond3d_lint::{Depth, LintContext, LintReport, Linter, Severity};
use prebond3d_obs::json::Value;
use prebond3d_resilience as resil;
use prebond3d_wcm::flow::{FlowConfig, Method};
use prebond3d_wcm::run_flow;

fn report_dir() -> PathBuf {
    std::env::var("PREBOND3D_REPORT_DIR").map_or_else(|_| PathBuf::from("results"), PathBuf::from)
}

/// Lint one die through the staged contexts.
fn lint_die(case: &context::DieCase) -> Vec<LintReport> {
    let library = context::library();
    let label = case.label();
    let mut reports = Vec::new();

    // Stage 1: the raw generated netlist.
    reports.push(
        Linter::with_default_passes()
            .run(&LintContext::new(format!("{label}/netlist")).with_netlist(&case.netlist)),
    );

    // Stage 2: scan insertion.
    match insert_scan(&case.netlist) {
        Ok((scanned, chain)) => reports.push(
            Linter::with_default_passes().run(
                &LintContext::new(format!("{label}/scan"))
                    .with_netlist(&scanned)
                    .with_chain(&chain),
            ),
        ),
        Err(e) => eprintln!("{label}: scan insertion failed: {e}"),
    }

    // Stage 3: the full flow, both scenarios, deep depth.
    for config in [
        FlowConfig::area_optimized(Method::Ours),
        FlowConfig::performance_optimized(Method::Ours),
    ] {
        let stage = format!("{label}/flow-{:?}", config.scenario).to_lowercase();
        match run_flow(&case.netlist, &case.placement, &library, &config) {
            Ok(result) => reports.push(lintflow::lint_result(
                &stage,
                &case.netlist,
                &result,
                &library,
                &config,
                Depth::Deep,
            )),
            Err(e) => eprintln!("{stage}: flow failed: {e}"),
        }
    }
    reports
}

/// Schema-check every report file in the results directory.
fn lint_reports_on_disk(dir: &PathBuf) -> Option<LintReport> {
    let entries = std::fs::read_dir(dir).ok()?;
    let mut ctx = LintContext::new(dir.display().to_string());
    let mut found = false;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if (name.starts_with("run_") || name.starts_with("BENCH_")) && name.ends_with(".json") {
            if let Ok(text) = std::fs::read_to_string(entry.path()) {
                ctx = ctx.with_report(name, text);
                found = true;
            }
        }
    }
    found.then(|| Linter::with_default_passes().run(&ctx))
}

fn main() -> ExitCode {
    let mut experiment = "full".to_string();
    let mut sarif_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--sarif" {
            match args.next() {
                Some(path) => sarif_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("prebond3d-lint: --sarif requires a path");
                    return ExitCode::from(2);
                }
            }
        } else {
            experiment = arg;
        }
    }
    let names = context::circuit_names();
    eprintln!("prebond3d-lint: auditing {}", names.join(", "));

    let cases = context::load_circuits(&names);
    let mut reports: Vec<LintReport> = Vec::new();
    let mut failed_dies = 0usize;
    for case in &cases {
        match catch_unwind(AssertUnwindSafe(|| lint_die(case))) {
            Ok(r) => reports.extend(r),
            Err(p) => {
                failed_dies += 1;
                eprintln!(
                    "{}: audit paniced: {}",
                    case.label(),
                    prebond3d_bench::report::panic_message(p.as_ref())
                );
            }
        }
    }
    let dir = report_dir();
    if let Some(r) = lint_reports_on_disk(&dir) {
        reports.push(r);
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut infos = 0usize;
    for report in &reports {
        errors += report.count(Severity::Error);
        warnings += report.count(Severity::Warn);
        infos += report.count(Severity::Info);
        if !report.diagnostics.is_empty() {
            print!("{}", report.render());
        }
    }
    println!(
        "lint: {} artifact(s), {errors} error(s), {warnings} warning(s), {infos} info",
        reports.len()
    );

    let doc = Value::obj([
        ("experiment", experiment.as_str().into()),
        ("errors", errors.into()),
        ("warnings", warnings.into()),
        ("infos", infos.into()),
        (
            "reports",
            Value::Arr(reports.iter().map(LintReport::to_json).collect()),
        ),
    ]);
    let path = dir.join(format!("lint_{experiment}.json"));
    match resil::io::atomic_write(&path, &format!("{doc}\n")) {
        Ok(()) => eprintln!("lint report: {}", path.display()),
        Err(e) => eprintln!("lint report: {e}"),
    }
    if let Some(path) = &sarif_path {
        let sarif = prebond3d_lint::sarif::to_sarif(&reports);
        match resil::io::atomic_write(path, &format!("{sarif}\n")) {
            Ok(()) => eprintln!("sarif report: {}", path.display()),
            Err(e) => eprintln!("sarif report: {e}"),
        }
    }

    if errors > 0 {
        ExitCode::from(1)
    } else if failed_dies > 0 {
        ExitCode::from(driver::EXIT_PARTIAL_FAILURE)
    } else {
        ExitCode::SUCCESS
    }
}

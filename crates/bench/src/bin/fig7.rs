//! Regenerate the paper's Fig. 7 (solution-space expansion).
use std::process::ExitCode;

use prebond3d_bench::driver;

fn main() -> ExitCode {
    driver::run("fig7", || {
        let rows = prebond3d_bench::fig7::run();
        print!("{}", prebond3d_bench::fig7::render(&rows));
        Ok(())
    })
}

//! Regenerate the paper's Fig. 7 (solution-space expansion).
fn main() {
    let rows = prebond3d_bench::fig7::run();
    print!("{}", prebond3d_bench::fig7::render(&rows));
}

//! Regenerate the paper's Fig. 7 (solution-space expansion).
use prebond3d_bench::report;

fn main() {
    report::begin("fig7");
    let rows = prebond3d_bench::fig7::run();
    print!("{}", prebond3d_bench::fig7::render(&rows));
    report::finish();
}

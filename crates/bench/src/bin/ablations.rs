//! Solution-quality ablations of the paper's three design choices,
//! beyond the tables the paper itself reports:
//!
//! 1. **Ordering** — larger-set-first vs inbound-first vs outbound-first
//!    (extends Table I to our method),
//! 2. **Timing model** — accurate (cap + wire) vs capacitance-only, with
//!    everything else held at "Ours",
//! 3. **Overlap sharing** — on/off (the Table V lever, summarized).
//!
//! Run: `PREBOND3D_CIRCUITS=b11,b12 cargo run --release -p prebond3d-bench --bin ablations`

use std::process::ExitCode;

use prebond3d_bench::lintflow::checked_run_flow;
use prebond3d_bench::{context, driver, report};
use prebond3d_wcm::flow::{FlowConfig, Method, Scenario};
use prebond3d_wcm::OrderingPolicy;

fn main() -> ExitCode {
    driver::run("ablations", || {
        let lib = context::library();
        let mut cases = Vec::new();
        for name in context::circuit_names() {
            cases.extend(context::load_circuit(name));
        }

        // --- Ablation 1: ordering policy ------------------------------------
        println!("== Ablation: TSV-set ordering (Ours, area scenario) ==");
        for ordering in [
            OrderingPolicy::LargerFirst,
            OrderingPolicy::InboundFirst,
            OrderingPolicy::OutboundFirst,
        ] {
            let mut reused = 0usize;
            let mut cells = 0usize;
            for case in &cases {
                let label = format!("ordering/{ordering:?}/{}", case.label());
                let r = report::die_scope(&label, || {
                    let config = FlowConfig {
                        method: Method::Ours,
                        scenario: Scenario::Area,
                        ordering: Some(ordering),
                        allow_overlap: None,
                    };
                    checked_run_flow(&label, &case.netlist, &case.placement, &lib, &config)
                })?;
                reused += r.reused_scan_ffs;
                cells += r.additional_wrapper_cells;
            }
            println!("{ordering:?}: reused {reused}, additional {cells}");
        }

        // --- Ablation 2: timing model under tight timing ---------------------
        // "Ours minus the accurate model" == Agrawal with our ordering +
        // overlap sharing: isolates the wire-delay term.
        println!("\n== Ablation: timing model (tight scenario) ==");
        let mut configs = vec![
            (
                "accurate (Ours)",
                FlowConfig::performance_optimized(Method::Ours),
            ),
            (
                "cap-only (Agrawal model, Ours ordering+overlap)",
                FlowConfig {
                    method: Method::Agrawal,
                    scenario: Scenario::Tight,
                    ordering: Some(OrderingPolicy::LargerFirst),
                    allow_overlap: Some(true),
                },
            ),
        ];
        for (label, config) in configs.drain(..) {
            let mut cells = 0usize;
            let mut violations = 0usize;
            for case in &cases {
                let scope = format!("timing/{label}/{}", case.label());
                let r = report::die_scope(&scope, || {
                    checked_run_flow(&scope, &case.netlist, &case.placement, &lib, &config)
                })?;
                cells += r.additional_wrapper_cells;
                violations += usize::from(r.timing_violation);
            }
            println!(
                "{label}: additional {cells}, violations {violations}/{}",
                cases.len()
            );
        }

        // --- Ablation 3: overlap sharing -------------------------------------
        println!("\n== Ablation: overlapped-cone sharing (Ours, area scenario) ==");
        for allow in [false, true] {
            let mut cells = 0usize;
            let mut overlap_edges = 0usize;
            for case in &cases {
                let scope = format!("overlap/{allow}/{}", case.label());
                let r = report::die_scope(&scope, || {
                    let config = FlowConfig {
                        method: Method::Ours,
                        scenario: Scenario::Area,
                        ordering: None,
                        allow_overlap: Some(allow),
                    };
                    checked_run_flow(&scope, &case.netlist, &case.placement, &lib, &config)
                })?;
                cells += r.additional_wrapper_cells;
                overlap_edges += r.phases.iter().map(|p| p.overlap_edges).sum::<usize>();
            }
            println!(
                "overlap={allow}: additional {cells} (+{overlap_edges} overlap edges admitted)"
            );
        }
        Ok(())
    })
}

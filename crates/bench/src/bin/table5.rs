//! Regenerate the paper's Table V (overlapped-cone ablation).
use prebond3d_atpg::engine::AtpgConfig;

fn main() {
    let rows = prebond3d_bench::table5::run(&AtpgConfig::thorough());
    print!("{}", prebond3d_bench::table5::render(&rows));
}

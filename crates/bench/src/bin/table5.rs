//! Regenerate the paper's Table V (overlapped-cone ablation).
use std::process::ExitCode;

use prebond3d_atpg::engine::AtpgConfig;
use prebond3d_bench::driver;

fn main() -> ExitCode {
    driver::run("table5", || {
        let rows = prebond3d_bench::table5::run(&AtpgConfig::thorough());
        print!("{}", prebond3d_bench::table5::render(&rows));
        prebond3d_bench::perf::record_fault_sim_speedup(&prebond3d_bench::circuit_names());
        Ok(())
    })
}

//! Regenerate the paper's Table I (ordering study, b12).
use std::process::ExitCode;

use prebond3d_atpg::engine::AtpgConfig;
use prebond3d_bench::driver;

fn main() -> ExitCode {
    driver::run("table1", || {
        let rows = prebond3d_bench::table1::run(&AtpgConfig::thorough());
        print!("{}", prebond3d_bench::table1::render(&rows));
        prebond3d_bench::perf::record_fault_sim_speedup(&["b12"]);
        Ok(())
    })
}

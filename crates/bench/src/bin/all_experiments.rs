//! Run every table and figure in sequence (the full reproduction).
use std::process::ExitCode;

use prebond3d_atpg::engine::AtpgConfig;
use prebond3d_bench::driver;

fn main() -> ExitCode {
    driver::run("all_experiments", || {
        let atpg = AtpgConfig::thorough();
        println!("== Table II ==");
        print!(
            "{}",
            prebond3d_bench::table2::render(&prebond3d_bench::table2::run())
        );
        println!("\n== Table I ==");
        print!(
            "{}",
            prebond3d_bench::table1::render(&prebond3d_bench::table1::run(&atpg))
        );
        println!("\n== Table III ==");
        print!(
            "{}",
            prebond3d_bench::table3::render(&prebond3d_bench::table3::run())
        );
        println!("\n== Table IV ==");
        print!(
            "{}",
            prebond3d_bench::table4::render(&prebond3d_bench::table4::run(&atpg))
        );
        println!("\n== Table V ==");
        print!(
            "{}",
            prebond3d_bench::table5::render(&prebond3d_bench::table5::run(&atpg))
        );
        println!("\n== Fig. 7 ==");
        print!(
            "{}",
            prebond3d_bench::fig7::render(&prebond3d_bench::fig7::run())
        );
        prebond3d_bench::perf::record_fault_sim_speedup(&prebond3d_bench::circuit_names());
        Ok(())
    })
}

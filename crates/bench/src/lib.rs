//! # prebond3d-bench
//!
//! The experiment harness: one module (and one binary) per table/figure of
//! the paper, sharing die construction, flow invocation and paper-style
//! text rendering. Every experiment returns structured rows so the
//! integration tests can assert the reproduced *shape* (who wins, by
//! roughly what factor) without parsing stdout.
//!
//! Scale control: the environment variable `PREBOND3D_CIRCUITS` selects a
//! comma-separated subset of benchmarks (default: all six). The full b18
//! runs take minutes; `PREBOND3D_CIRCUITS=b11,b12` gives a quick pass.

pub mod context;
pub mod driver;
pub mod fig7;
pub mod lintflow;
pub mod loadgen;
pub mod obsdiff;
pub mod perf;
pub mod report;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

pub use context::{circuit_names, load_circuit, load_circuits, try_circuit_names, DieCase};

/// Render a percentage like the paper (`99.42%`).
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

//! Shared experiment context: die generation + placement, cached per run.

use prebond3d_celllib::Library;
use prebond3d_netlist::{itc99, Netlist};
use prebond3d_place::{place, PlaceConfig, Placement};

/// One benchmark die ready for experiments.
#[derive(Debug, Clone)]
pub struct DieCase {
    /// Benchmark name (`b11` … `b22`).
    pub circuit: &'static str,
    /// Die index (0..4).
    pub die: usize,
    /// The synthetic netlist (Table II statistics).
    pub netlist: Netlist,
    /// Its placement.
    pub placement: Placement,
}

impl DieCase {
    /// `"b12 Die1"`-style label.
    pub fn label(&self) -> String {
        format!("{} Die{}", self.circuit, self.die)
    }
}

/// Benchmark subset selected by `PREBOND3D_CIRCUITS` (default: all six).
pub fn circuit_names() -> Vec<&'static str> {
    match std::env::var("PREBOND3D_CIRCUITS") {
        Ok(list) => itc99::CIRCUIT_NAMES
            .iter()
            .copied()
            .filter(|n| list.split(',').any(|s| s.trim() == *n))
            .collect(),
        Err(_) => itc99::CIRCUIT_NAMES.to_vec(),
    }
}

/// Generate and place all four dies of `name`.
///
/// Placement effort scales down for the largest benchmarks so the full
/// six-circuit sweep stays tractable; annealing effort only perturbs
/// distances, not the algorithms under test.
pub fn load_circuit(name: &str) -> Vec<DieCase> {
    let spec = itc99::circuit(name).unwrap_or_else(|| panic!("unknown circuit `{name}`"));
    spec.dies
        .iter()
        .enumerate()
        .map(|(i, die_spec)| {
            let netlist = itc99::generate_die(die_spec);
            let moves = if netlist.len() > 20_000 {
                4
            } else if netlist.len() > 5_000 {
                10
            } else {
                24
            };
            let config = PlaceConfig {
                moves_per_cell: moves,
                ..PlaceConfig::default()
            };
            let placement = place(&netlist, &config, 1);
            DieCase {
                circuit: spec.name,
                die: i,
                netlist,
                placement,
            }
        })
        .collect()
}

/// The shared standard-cell library.
pub fn library() -> Library {
    Library::nangate45_like()
}

//! Shared experiment context: die generation + placement, cached per run.

use std::panic::{catch_unwind, AssertUnwindSafe};

use prebond3d_celllib::Library;
use prebond3d_netlist::{itc99, Netlist};
use prebond3d_place::{place, PlaceConfig, Placement};

/// One benchmark die ready for experiments.
#[derive(Debug, Clone)]
pub struct DieCase {
    /// Benchmark name (`b11` … `b22`).
    pub circuit: &'static str,
    /// Die index (0..4).
    pub die: usize,
    /// The synthetic netlist (Table II statistics).
    pub netlist: Netlist,
    /// Its placement.
    pub placement: Placement,
}

impl DieCase {
    /// `"b12 Die1"`-style label.
    pub fn label(&self) -> String {
        format!("{} Die{}", self.circuit, self.die)
    }
}

/// Benchmark subset selected by `PREBOND3D_CIRCUITS` (default: all six).
///
/// Exits with a diagnostic when the selection matches nothing — an empty
/// sweep would silently print empty tables, which always means a typo in
/// the variable, never an intent.
pub fn circuit_names() -> Vec<&'static str> {
    match try_circuit_names() {
        Ok(names) => names,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// [`circuit_names`] that reports a bad selection instead of exiting.
///
/// Unknown entries produce a warning (with the valid names); a selection
/// matching *no* benchmark is an error.
///
/// # Errors
///
/// `PREBOND3D_CIRCUITS` is set and selects no known benchmark.
pub fn try_circuit_names() -> Result<Vec<&'static str>, String> {
    let Ok(list) = std::env::var("PREBOND3D_CIRCUITS") else {
        return Ok(itc99::CIRCUIT_NAMES.to_vec());
    };
    let entries: Vec<&str> = list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let unknown: Vec<&str> = entries
        .iter()
        .copied()
        .filter(|e| !itc99::CIRCUIT_NAMES.contains(e))
        .collect();
    if !unknown.is_empty() {
        eprintln!(
            "warning: PREBOND3D_CIRCUITS entries [{}] match no benchmark (valid: {})",
            unknown.join(", "),
            itc99::CIRCUIT_NAMES.join(", ")
        );
    }
    let selected: Vec<&'static str> = itc99::CIRCUIT_NAMES
        .iter()
        .copied()
        .filter(|n| entries.contains(n))
        .collect();
    if selected.is_empty() {
        return Err(format!(
            "PREBOND3D_CIRCUITS=`{list}` selects no benchmark; valid names: {}",
            itc99::CIRCUIT_NAMES.join(", ")
        ));
    }
    Ok(selected)
}

/// Generate and place all four dies of `name`.
///
/// Placement effort scales down for the largest benchmarks so the full
/// six-circuit sweep stays tractable; annealing effort only perturbs
/// distances, not the algorithms under test.
pub fn load_circuit(name: &str) -> Vec<DieCase> {
    let spec = itc99::circuit(name).unwrap_or_else(|| panic!("unknown circuit `{name}`"));
    let units: Vec<(&'static str, usize, &itc99::DieSpec)> = spec
        .dies
        .iter()
        .enumerate()
        .map(|(i, d)| (spec.name, i, d))
        .collect();
    build_cases(&units)
}

/// Generate and place all dies of every circuit in `names`, flattened to
/// `circuit × die` order. Each die is one pool work unit (generation +
/// annealing placement are seeded and self-contained), so the result is
/// identical for any thread count.
pub fn load_circuits(names: &[&'static str]) -> Vec<DieCase> {
    let specs: Vec<itc99::CircuitSpec> = names
        .iter()
        .map(|n| itc99::circuit(n).unwrap_or_else(|| panic!("unknown circuit `{n}`")))
        .collect();
    let units: Vec<(&'static str, usize, &itc99::DieSpec)> = specs
        .iter()
        .flat_map(|s| s.dies.iter().enumerate().map(|(i, d)| (s.name, i, d)))
        .collect();
    build_cases(&units)
}

/// Build every `(circuit, die)` unit on the pool with per-unit panic
/// isolation: a die whose generation or placement panics (a real bug, or
/// an injected `netlist.load` chaos fault) is recorded as a failed unit
/// and dropped from the sweep instead of aborting it.
fn build_cases(units: &[(&'static str, usize, &itc99::DieSpec)]) -> Vec<DieCase> {
    let built = crate::report::pool_with_poison_fallback(units, |&(name, i, d)| {
        catch_unwind(AssertUnwindSafe(|| build_case(name, i, d)))
            .map_err(|p| crate::report::panic_message(p.as_ref()))
    });
    built
        .into_iter()
        .zip(units)
        .filter_map(|(res, &(name, i, _))| match res {
            Ok(case) => Some(case),
            Err(msg) => {
                crate::report::record_failure(&format!("{name} Die{i} (load)"), &msg);
                None
            }
        })
        .collect()
}

fn build_case(circuit: &'static str, die: usize, die_spec: &itc99::DieSpec) -> DieCase {
    let netlist = itc99::generate_die(die_spec);
    let moves = if netlist.len() > 20_000 {
        4
    } else if netlist.len() > 5_000 {
        10
    } else {
        24
    };
    let config = PlaceConfig {
        moves_per_cell: moves,
        ..PlaceConfig::default()
    };
    let placement = place(&netlist, &config, 1);
    DieCase {
        circuit,
        die,
        netlist,
        placement,
    }
}

/// The shared standard-cell library.
pub fn library() -> Library {
    Library::nangate45_like()
}

//! Table I: the TSV-set-ordering study.
//!
//! Runs Agrawal's method on the b12 dies starting from the inbound set
//! versus the outbound set, measuring post-wrapping stuck-at fault
//! coverage and the number of additional wrapper cells — the motivation
//! for the paper's larger-set-first rule.

use std::fmt::Write as _;

use prebond3d_atpg::engine::{run_stuck_at, AtpgConfig};
use prebond3d_dft::prebond_access;
use prebond3d_obs::json::Value;
use prebond3d_wcm::flow::{FlowConfig, Method, Scenario};
use prebond3d_wcm::OrderingPolicy;

use crate::context::{self, DieCase};
use crate::lintflow::checked_run_flow;

/// One die's two ordering outcomes.
#[derive(Debug, Clone)]
pub struct Row {
    /// `"b12 Die1"`.
    pub label: String,
    /// Inbound TSVs on the die.
    pub inbound: usize,
    /// Outbound TSVs on the die.
    pub outbound: usize,
    /// (fault coverage, additional wrapper cells) starting from inbound.
    pub from_inbound: (f64, usize),
    /// (fault coverage, additional wrapper cells) starting from outbound.
    pub from_outbound: (f64, usize),
}

impl Row {
    /// Checkpoint codec: serialize for the resume log.
    pub fn to_json(&self) -> Value {
        let pair = |(cov, cells): (f64, usize)| {
            Value::obj([("coverage", cov.into()), ("cells", cells.into())])
        };
        Value::obj([
            ("label", self.label.as_str().into()),
            ("inbound", self.inbound.into()),
            ("outbound", self.outbound.into()),
            ("from_inbound", pair(self.from_inbound)),
            ("from_outbound", pair(self.from_outbound)),
        ])
    }

    /// Checkpoint codec: revive a row from the resume log.
    pub fn from_json(v: &Value) -> Option<Row> {
        let pair = |v: &Value| {
            Some((
                v.get("coverage")?.as_f64()?,
                v.get("cells")?.as_u64()? as usize,
            ))
        };
        Some(Row {
            label: v.get("label")?.as_str()?.to_string(),
            inbound: v.get("inbound")?.as_u64()? as usize,
            outbound: v.get("outbound")?.as_u64()? as usize,
            from_inbound: pair(v.get("from_inbound")?)?,
            from_outbound: pair(v.get("from_outbound")?)?,
        })
    }
}

/// Run the ordering study for one die.
pub fn run_die(case: &DieCase, atpg: &AtpgConfig) -> Row {
    let lib = context::library();
    let measure = |ordering: OrderingPolicy| {
        let config = FlowConfig {
            method: Method::Agrawal,
            scenario: Scenario::Area,
            ordering: Some(ordering),
            allow_overlap: None,
        };
        let r = checked_run_flow(&case.label(), &case.netlist, &case.placement, &lib, &config)
            .expect("flow runs and lints clean");
        let access = prebond_access(&r.testable);
        let atpg_result = run_stuck_at(&r.testable.netlist, &access, atpg);
        (atpg_result.test_coverage(), r.additional_wrapper_cells)
    };
    let stats = case.netlist.stats();
    Row {
        label: case.label(),
        inbound: stats.inbound_tsvs,
        outbound: stats.outbound_tsvs,
        from_inbound: measure(OrderingPolicy::InboundFirst),
        from_outbound: measure(OrderingPolicy::OutboundFirst),
    }
}

/// Run over the paper's Table I workload (b12, all four dies), one pool
/// worker per die — panic-isolated and checkpointed, so a failed die is
/// reported and the rest of the table still renders.
pub fn run(atpg: &AtpgConfig) -> Vec<Row> {
    let cases = context::load_circuit("b12");
    crate::report::resilient_par_die_scopes(
        "table1",
        &cases,
        DieCase::label,
        |case| run_die(case, atpg),
        Row::to_json,
        Row::from_json,
    )
    .into_iter()
    .flatten()
    .collect()
}

/// Render paper-style.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table I — starting from inbound vs outbound TSVs (Agrawal's method)"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>5} {:>5} | {:>10} {:>7} | {:>10} {:>7}",
        "", "#in", "#out", "cov(in)", "#cells", "cov(out)", "#cells"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>5} | {:>10} {:>7} | {:>10} {:>7}",
            r.label,
            r.inbound,
            r.outbound,
            crate::pct(r.from_inbound.0),
            r.from_inbound.1,
            crate::pct(r.from_outbound.0),
            r.from_outbound.1,
        );
    }
    // The paper's takeaway: the larger set first is at least as good.
    let better = rows
        .iter()
        .filter(|r| {
            let larger_first = if r.outbound > r.inbound {
                r.from_outbound
            } else {
                r.from_inbound
            };
            let smaller_first = if r.outbound > r.inbound {
                r.from_inbound
            } else {
                r.from_outbound
            };
            larger_first.1 <= smaller_first.1
        })
        .count();
    let _ = writeln!(
        out,
        "larger-set-first inserts no more cells on {better}/{} dies",
        rows.len()
    );
    out
}

//! Table II: characteristics of the benchmark dies.
//!
//! For the synthetic instances this is reproduction *by construction* —
//! the generator is parameterized by the published counts — so the table
//! doubles as a self-check that the workload matches the paper exactly.

use std::fmt::Write as _;

use prebond3d_obs::json::Value;

use crate::context;

/// One die row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// `"b12 Die1"`.
    pub label: String,
    /// Scan flip-flops.
    pub scan_ffs: usize,
    /// Combinational gates.
    pub gates: usize,
    /// Total TSVs.
    pub tsvs: usize,
    /// Inbound TSVs.
    pub inbound: usize,
    /// Outbound TSVs.
    pub outbound: usize,
}

impl Row {
    /// Checkpoint codec: serialize for the resume log.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("label", self.label.as_str().into()),
            ("scan_ffs", self.scan_ffs.into()),
            ("gates", self.gates.into()),
            ("tsvs", self.tsvs.into()),
            ("inbound", self.inbound.into()),
            ("outbound", self.outbound.into()),
        ])
    }

    /// Checkpoint codec: revive a row from the resume log.
    pub fn from_json(v: &Value) -> Option<Row> {
        let n = |key: &str| v.get(key)?.as_u64().map(|x| x as usize);
        Some(Row {
            label: v.get("label")?.as_str()?.to_string(),
            scan_ffs: n("scan_ffs")?,
            gates: n("gates")?,
            tsvs: n("tsvs")?,
            inbound: n("inbound")?,
            outbound: n("outbound")?,
        })
    }
}

/// Collect rows for the selected circuits (die generation + placement is
/// the work here, parallelized inside [`context::load_circuits`]).
pub fn run() -> Vec<Row> {
    let cases = context::load_circuits(&context::circuit_names());
    crate::report::resilient_par_die_scopes(
        "table2",
        &cases,
        crate::DieCase::label,
        |case| {
            let s = case.netlist.stats();
            Row {
                label: case.label(),
                scan_ffs: s.scan_flip_flops,
                gates: s.combinational_gates,
                tsvs: s.tsvs(),
                inbound: s.inbound_tsvs,
                outbound: s.outbound_tsvs,
            }
        },
        Row::to_json,
        Row::from_json,
    )
    .into_iter()
    .flatten()
    .collect()
}

/// Render paper-style.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table II — benchmark-die characteristics");
    let _ = writeln!(
        out,
        "{:<12} {:>9} {:>8} {:>7} {:>9} {:>10}",
        "", "#scan FFs", "#gates", "#TSVs", "#inbound", "#outbound"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>9} {:>8} {:>7} {:>9} {:>10}",
            r.label, r.scan_ffs, r.gates, r.tsvs, r.inbound, r.outbound
        );
    }
    let n = rows.len().max(1) as f64;
    let _ = writeln!(
        out,
        "{:<12} {:>9.2} {:>8.2} {:>7.2} {:>9.2} {:>10.2}",
        "Average",
        rows.iter().map(|r| r.scan_ffs as f64).sum::<f64>() / n,
        rows.iter().map(|r| r.gates as f64).sum::<f64>() / n,
        rows.iter().map(|r| r.tsvs as f64).sum::<f64>() / n,
        rows.iter().map(|r| r.inbound as f64).sum::<f64>() / n,
        rows.iter().map(|r| r.outbound as f64).sum::<f64>() / n,
    );
    out
}

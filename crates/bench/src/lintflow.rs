//! Lint gate around [`run_flow`]: every experiment cell is statically
//! checked right after it runs.
//!
//! [`checked_run_flow`] is the drop-in the table/figure modules call
//! instead of `run_flow`. After the flow completes it runs the quick
//! depth of the `prebond3d-lint` pipeline over the produced artifacts and
//! turns any Error-severity finding into a flow failure, so a regression
//! in wrapper wiring or TSV coverage aborts the experiment instead of
//! silently skewing a table.
//!
//! Two deliberate relaxations:
//!
//! * configurations that are *expected* to violate timing — the whole
//!   area-optimized scenario (it sets `s_th = −∞` and makes no timing
//!   promise; Table III reports its violations), the Agrawal and Li
//!   baselines under tight timing, and any ablation that forces an
//!   ordering or overlap policy — get `P3404` allow-listed: their
//!   violations are the paper's Table III/V result, not a bug;
//! * setting `PREBOND3D_LINT=0` (or `off`) disables the gate entirely,
//!   for timing-sensitive perf runs.

use prebond3d_celllib::Library;
use prebond3d_lint::diagnostic::NEGATIVE_POST_SLACK;
use prebond3d_lint::flow::{flow_context, thresholds_for};
use prebond3d_lint::{Depth, LintReport, Linter};
use prebond3d_netlist::Netlist;
use prebond3d_place::Placement;
use prebond3d_wcm::flow::{run_flow, FlowConfig, FlowError, Method, Scenario};
use prebond3d_wcm::FlowResult;

/// Whether the lint gate is active (`PREBOND3D_LINT`, default on).
pub fn enabled() -> bool {
    match std::env::var("PREBOND3D_LINT") {
        Ok(v) => !matches!(v.trim(), "0" | "off" | "false" | "no"),
        Err(_) => true,
    }
}

/// `true` when `config` is a cell the paper itself reports as violating
/// (the timing-blind area scenario, baselines under tight timing,
/// forced-policy ablations): its negative post-insertion slack is a
/// result, not a defect. The gated invariant is the paper's headline —
/// Ours under tight timing stays violation-free (Table III: 0/24).
pub fn expects_violation(config: &FlowConfig) -> bool {
    config.method != Method::Ours
        || config.scenario == Scenario::Area
        || config.ordering.is_some()
        || config.allow_overlap.is_some()
}

/// Lint one completed flow at the given depth, applying the severity
/// policy above. Also used by the `prebond3d-lint` binary (deep mode).
pub fn lint_result(
    label: &str,
    netlist: &Netlist,
    result: &FlowResult,
    library: &Library,
    config: &FlowConfig,
    depth: Depth,
) -> LintReport {
    let thresholds = thresholds_for(config, library, result.placement.scale());
    let ctx = flow_context(label, netlist, result, library, &thresholds, config, depth);
    let mut linter = Linter::with_default_passes();
    if expects_violation(config) {
        linter = linter.allow(NEGATIVE_POST_SLACK);
    }
    if prebond3d_resilience::budget::budget_armed() {
        // A phase budget can legitimately truncate the searches that keep
        // timing clean (PODEM, annealing, clique merging); the resulting
        // violations are recorded degradations, not defects, so a budgeted
        // run still lints clean.
        linter = linter.allow(NEGATIVE_POST_SLACK);
    }
    linter.run(&ctx)
}

/// [`run_flow`] followed by the quick lint gate.
///
/// # Errors
///
/// Propagates `run_flow` failures; additionally fails when the lint gate
/// is enabled and finds an Error-severity diagnostic, with the rendered
/// report as the error message.
pub fn checked_run_flow(
    label: &str,
    netlist: &Netlist,
    placement: &Placement,
    library: &Library,
    config: &FlowConfig,
) -> Result<FlowResult, FlowError> {
    let result = run_flow(netlist, placement, library, config)?;
    if enabled() {
        let report = lint_result(label, netlist, &result, library, config, Depth::Quick);
        if report.has_errors() {
            return Err(FlowError::LintGate {
                label: format!("{label} ({} {:?})", config.method.label(), config.scenario),
                report: report.render(),
            });
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::itc99::{generate_die, DieSpec};
    use prebond3d_place::{place, PlaceConfig};

    fn case() -> (Netlist, Placement) {
        let die = generate_die(&DieSpec {
            name: "gate".to_string(),
            gates: 240,
            scan_flip_flops: 20,
            inbound_tsvs: 7,
            outbound_tsvs: 7,
            primary_inputs: 5,
            primary_outputs: 5,
            seed: 3,
        });
        let placement = place(&die, &PlaceConfig::default(), 3);
        (die, placement)
    }

    #[test]
    fn paper_cells_pass_the_gate() {
        let (die, placement) = case();
        let library = Library::nangate45_like();
        for config in [
            FlowConfig::area_optimized(Method::Ours),
            FlowConfig::performance_optimized(Method::Ours),
            FlowConfig::performance_optimized(Method::Agrawal),
            FlowConfig::area_optimized(Method::Naive),
        ] {
            checked_run_flow("gate", &die, &placement, &library, &config)
                .unwrap_or_else(|e| panic!("{:?} {:?}: {e}", config.method, config.scenario));
        }
    }

    #[test]
    fn violation_policy_tracks_the_configuration() {
        assert!(!expects_violation(&FlowConfig::performance_optimized(
            Method::Ours
        )));
        assert!(expects_violation(&FlowConfig::performance_optimized(
            Method::Li
        )));
        // Area-optimized makes no timing promise, for any method.
        assert!(expects_violation(&FlowConfig::area_optimized(Method::Ours)));
        let forced = FlowConfig {
            allow_overlap: Some(false),
            ..FlowConfig::performance_optimized(Method::Ours)
        };
        assert!(expects_violation(&forced));
    }

    #[test]
    fn deep_lint_of_a_paper_cell_is_clean() {
        let (die, placement) = case();
        let library = Library::nangate45_like();
        let config = FlowConfig::performance_optimized(Method::Ours);
        let result = run_flow(&die, &placement, &library, &config).unwrap();
        let report = lint_result("gate", &die, &result, &library, &config, Depth::Deep);
        assert!(!report.has_errors(), "{}", report.render());
    }
}

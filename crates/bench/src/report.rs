//! Machine-readable run reports and the perf trajectory.
//!
//! Every experiment binary wraps its work in [`begin`]/[`finish`]; the
//! table modules bracket each die's work with [`die_scope`] (serial) or
//! [`par_die_scopes`] (one pool worker per die). The result is one
//! `results/run_<experiment>.json` per invocation, holding per-die phase
//! timings (the `flow/...` span tree) and the algorithm counters (graph
//! edges, clique merges, PODEM backtracks, …) that the text tables do not
//! show — plus one `BENCH_<experiment>.json` with the aggregated
//! wall-time-per-phase breakdown, the thread count, and any serial-vs-
//! parallel speedup measurements recorded via [`record_speedup`].
//!
//! The collector forces `prebond3d-obs` recording on for the duration of
//! the run, independent of the `PREBOND3D_OBS` sink — so reports are
//! always written, while event streaming stays opt-in. When no collector
//! is active (unit tests calling `table3::run()` directly), the scopes
//! degrade to plain calls.
//!
//! ## Parallel sections and determinism
//!
//! Each die section is captured with [`obs::capture`], which aggregates
//! that worker's probes into a thread-local registry — workers never
//! touch (let alone reset) the global registry, and the collector pushes
//! sections **in submission order**, so the report's section list is
//! identical for any `PREBOND3D_THREADS`. Only the `ms` timings differ
//! run to run; every counter and span count is exact (counters commute —
//! each probe lands in exactly one section's registry).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

use prebond3d_obs as obs;
use prebond3d_obs::json::Value;
use prebond3d_pool as pool;

struct Collector {
    experiment: String,
    started: Instant,
    sections: Vec<Value>,
    /// `span path → (completions, total ms)` aggregated across sections.
    phase_ms: BTreeMap<String, (u64, f64)>,
    /// Speedup records from [`record_speedup`].
    speedups: Vec<Value>,
    /// Keeps obs aggregation on until `finish`.
    _recording: obs::RecordingGuard,
}

static COLLECTOR: Mutex<Option<Collector>> = Mutex::new(None);

/// Start collecting a run report for `experiment`. Replaces any collector
/// left over from an earlier, unfinished run.
pub fn begin(experiment: &str) {
    let collector = Collector {
        experiment: experiment.to_string(),
        started: Instant::now(),
        sections: Vec::new(),
        phase_ms: BTreeMap::new(),
        speedups: Vec::new(),
        _recording: obs::record(),
    };
    *COLLECTOR.lock().unwrap() = Some(collector);
    obs::reset();
}

fn collector_active() -> bool {
    COLLECTOR.lock().unwrap().is_some()
}

/// Build the per-section JSON payload and fold its spans into the
/// collector's phase aggregation.
fn push_section(label: &str, elapsed_ms: f64, snap: &obs::Snapshot) {
    let mut section = snap.to_json();
    if let Value::Obj(map) = &mut section {
        map.insert("label".to_string(), label.into());
        map.insert("ms".to_string(), elapsed_ms.into());
    }
    if let Some(c) = COLLECTOR.lock().unwrap().as_mut() {
        for s in &snap.spans {
            let e = c.phase_ms.entry(s.path.clone()).or_insert((0, 0.0));
            e.0 += s.count;
            e.1 += s.total_ms();
        }
        c.sections.push(section);
    }
}

/// Run `f` as one report section (typically one die), capturing the obs
/// spans/counters it produces. A plain call when no collector is active.
pub fn die_scope<T>(label: &str, f: impl FnOnce() -> T) -> T {
    if !collector_active() {
        return f();
    }
    let t = Instant::now();
    let (out, snap) = obs::capture(f);
    push_section(label, t.elapsed().as_secs_f64() * 1.0e3, &snap);
    out
}

/// Parallel [`die_scope`]: run `f` over `cases` on the pool, one section
/// per case. Outputs **and** report sections come back in `cases` order
/// regardless of thread count — each worker captures its own probes
/// thread-locally and the merge happens here, serially. With no active
/// collector the cases still run on the pool; only the sections are
/// skipped.
pub fn par_die_scopes<C, T>(
    cases: &[C],
    label: impl Fn(&C) -> String + Sync,
    f: impl Fn(&C) -> T + Sync,
) -> Vec<T>
where
    C: Sync,
    T: Send,
{
    let active = collector_active();
    // Chunk size 1: dies are few and heavy, so each is its own work unit.
    let results = pool::par_map_chunked(cases, 1, |case| {
        let t = Instant::now();
        let (out, snap) = if active {
            obs::capture(|| f(case))
        } else {
            (f(case), obs::Snapshot::empty())
        };
        (out, t.elapsed().as_secs_f64() * 1.0e3, snap)
    });
    results
        .into_iter()
        .zip(cases)
        .map(|((out, ms, snap), case)| {
            if active {
                push_section(&label(case), ms, &snap);
            }
            out
        })
        .collect()
}

/// Record one serial-vs-parallel wall-clock measurement (written to
/// `BENCH_<experiment>.json`). A no-op when no collector is active.
pub fn record_speedup(
    phase: &str,
    substrate: &str,
    threads: usize,
    serial_ms: f64,
    parallel_ms: f64,
) {
    let speedup = if parallel_ms > 0.0 {
        serial_ms / parallel_ms
    } else {
        0.0
    };
    eprintln!(
        "perf: {phase} on {substrate}: {serial_ms:.1} ms serial, \
         {parallel_ms:.1} ms at {threads} threads ({speedup:.2}x)"
    );
    if let Some(c) = COLLECTOR.lock().unwrap().as_mut() {
        c.speedups.push(Value::obj([
            ("phase", phase.into()),
            ("substrate", substrate.into()),
            ("threads", threads.into()),
            ("serial_ms", serial_ms.into()),
            ("parallel_ms", parallel_ms.into()),
            ("speedup", speedup.into()),
        ]));
    }
}

fn report_dir() -> PathBuf {
    std::env::var("PREBOND3D_REPORT_DIR").map_or_else(|_| PathBuf::from("results"), PathBuf::from)
}

fn write_report(path: &PathBuf, doc: &Value) -> bool {
    match std::fs::write(path, format!("{doc}\n")) {
        Ok(()) => {
            eprintln!("run report: {}", path.display());
            true
        }
        Err(e) => {
            eprintln!("run report: cannot write {}: {e}", path.display());
            false
        }
    }
}

/// Finish the report: write `results/run_<experiment>.json` and
/// `results/BENCH_<experiment>.json` (directory overridable via
/// `PREBOND3D_REPORT_DIR`) and return the run report's path. `None` when
/// no collector is active; write errors are reported on stderr rather
/// than aborting the experiment (the text output already happened).
pub fn finish() -> Option<PathBuf> {
    let collector = COLLECTOR.lock().unwrap().take()?;
    let elapsed_ms = collector.started.elapsed().as_secs_f64() * 1.0e3;
    let run_doc = Value::obj([
        ("experiment", collector.experiment.as_str().into()),
        ("elapsed_ms", elapsed_ms.into()),
        ("sections", Value::Arr(collector.sections)),
    ]);
    let phases: Vec<Value> = collector
        .phase_ms
        .iter()
        .map(|(path, &(count, ms))| {
            Value::obj([
                ("path", path.as_str().into()),
                ("count", count.into()),
                ("ms", ms.into()),
            ])
        })
        .collect();
    let bench_doc = Value::obj([
        ("experiment", collector.experiment.as_str().into()),
        ("threads", pool::threads().into()),
        ("elapsed_ms", elapsed_ms.into()),
        ("phases", Value::Arr(phases)),
        ("speedup", Value::Arr(collector.speedups)),
    ]);

    let dir = report_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("run report: cannot create {}: {e}", dir.display());
        return None;
    }
    let bench_path = dir.join(format!("BENCH_{}.json", collector.experiment));
    write_report(&bench_path, &bench_doc);
    let run_path = dir.join(format!("run_{}.json", collector.experiment));
    write_report(&run_path, &run_doc).then_some(run_path)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is global state shared with any other test in this
    // binary that records; serialize access.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn inactive_scope_is_a_plain_call() {
        let _l = LOCK.lock().unwrap();
        assert!(COLLECTOR.lock().unwrap().is_none());
        let out = die_scope("x", || 41 + 1);
        assert_eq!(out, 42);
        let outs = par_die_scopes(&[1, 2, 3], |c| format!("c{c}"), |&c| c * 10);
        assert_eq!(outs, vec![10, 20, 30]);
    }

    #[test]
    fn report_roundtrips_through_the_json_parser() {
        let _l = LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("prebond3d_report_test");
        std::env::set_var("PREBOND3D_REPORT_DIR", &dir);

        begin("unit");
        let v = die_scope("die0", || {
            let _s = obs::span("unit_phase");
            obs::count("unit.counter", 3);
            7
        });
        assert_eq!(v, 7);
        let path = finish().expect("report written");
        std::env::remove_var("PREBOND3D_REPORT_DIR");
        let text = std::fs::read_to_string(&path).unwrap();

        let doc = prebond3d_obs::json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("experiment").unwrap().as_str(), Some("unit"));
        let sections = doc.get("sections").unwrap().as_arr().unwrap();
        assert_eq!(sections.len(), 1);
        let sec = &sections[0];
        assert_eq!(sec.get("label").unwrap().as_str(), Some("die0"));
        assert_eq!(
            sec.get("counters")
                .unwrap()
                .get("unit.counter")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        let spans = sec.get("spans").unwrap().as_arr().unwrap();
        assert!(spans
            .iter()
            .any(|s| s.get("path").unwrap().as_str() == Some("unit_phase")));
    }

    #[test]
    fn parallel_sections_keep_submission_order_and_exact_counters() {
        let _l = LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("prebond3d_report_par_test");
        std::env::set_var("PREBOND3D_REPORT_DIR", &dir);

        let cases: Vec<u64> = (0..6).collect();
        begin("unit_par");
        let outs = pool::with_threads(4, || {
            par_die_scopes(
                &cases,
                |c| format!("die{c}"),
                |&c| {
                    let _s = obs::span("work");
                    obs::count("work.items", c + 1);
                    c * 2
                },
            )
        });
        assert_eq!(outs, vec![0, 2, 4, 6, 8, 10]);
        let path = finish().expect("report written");
        std::env::remove_var("PREBOND3D_REPORT_DIR");

        let doc = prebond3d_obs::json::parse(&std::fs::read_to_string(&path).unwrap())
            .expect("valid JSON");
        let sections = doc.get("sections").unwrap().as_arr().unwrap();
        let labels: Vec<&str> = sections
            .iter()
            .map(|s| s.get("label").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(labels, ["die0", "die1", "die2", "die3", "die4", "die5"]);
        for (i, sec) in sections.iter().enumerate() {
            assert_eq!(
                sec.get("counters")
                    .unwrap()
                    .get("work.items")
                    .unwrap()
                    .as_u64(),
                Some(i as u64 + 1),
                "each section holds exactly its own worker's counters"
            );
        }
    }

    #[test]
    fn bench_report_carries_phases_and_speedups() {
        let _l = LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("prebond3d_report_bench_test");
        std::env::set_var("PREBOND3D_REPORT_DIR", &dir);

        begin("unit_bench");
        die_scope("die0", || {
            let _s = obs::span("phase_a");
        });
        die_scope("die1", || {
            let _s = obs::span("phase_a");
        });
        record_speedup("fault_simulation", "b12_die0", 4, 100.0, 40.0);
        let run_path = finish().expect("report written");
        std::env::remove_var("PREBOND3D_REPORT_DIR");

        let bench_path = run_path.with_file_name("BENCH_unit_bench.json");
        let doc = prebond3d_obs::json::parse(&std::fs::read_to_string(&bench_path).unwrap())
            .expect("valid JSON");
        assert_eq!(doc.get("experiment").unwrap().as_str(), Some("unit_bench"));
        assert!(doc.get("threads").unwrap().as_u64().unwrap() >= 1);
        let phases = doc.get("phases").unwrap().as_arr().unwrap();
        let pa = phases
            .iter()
            .find(|p| p.get("path").unwrap().as_str() == Some("phase_a"))
            .expect("phase_a aggregated");
        assert_eq!(pa.get("count").unwrap().as_u64(), Some(2));
        let speedups = doc.get("speedup").unwrap().as_arr().unwrap();
        assert_eq!(speedups.len(), 1);
        let s = &speedups[0];
        assert_eq!(s.get("phase").unwrap().as_str(), Some("fault_simulation"));
        assert_eq!(s.get("speedup").unwrap().as_u64(), None); // 2.5 is not integral
        assert!((s.get("speedup").unwrap().as_f64().unwrap() - 2.5).abs() < 1e-9);
    }
}

//! Machine-readable run reports.
//!
//! Every experiment binary wraps its work in [`begin`]/[`finish`]; the
//! table modules bracket each die's work with [`die_scope`]. The result is
//! one `results/run_<experiment>.json` per invocation, holding per-die
//! phase timings (the `flow/...` span tree) and the algorithm counters
//! (graph edges, clique merges, PODEM backtracks, …) that the text tables
//! do not show.
//!
//! The collector forces `prebond3d-obs` recording on for the duration of
//! the run, independent of the `PREBOND3D_OBS` sink — so reports are
//! always written, while event streaming stays opt-in. When no collector
//! is active (unit tests calling `table3::run()` directly), `die_scope`
//! degrades to a plain call.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

use prebond3d_obs as obs;
use prebond3d_obs::json::Value;

struct Collector {
    experiment: String,
    started: Instant,
    sections: Vec<Value>,
    /// Keeps obs aggregation on until `finish`.
    _recording: obs::RecordingGuard,
}

static COLLECTOR: Mutex<Option<Collector>> = Mutex::new(None);

/// Start collecting a run report for `experiment`. Replaces any collector
/// left over from an earlier, unfinished run.
pub fn begin(experiment: &str) {
    let collector = Collector {
        experiment: experiment.to_string(),
        started: Instant::now(),
        sections: Vec::new(),
        _recording: obs::record(),
    };
    *COLLECTOR.lock().unwrap() = Some(collector);
    obs::reset();
}

/// Run `f` as one report section (typically one die), capturing the obs
/// spans/counters it produces. A plain call when no collector is active.
pub fn die_scope<T>(label: &str, f: impl FnOnce() -> T) -> T {
    if COLLECTOR.lock().unwrap().is_none() {
        return f();
    }
    obs::reset();
    let t = Instant::now();
    let out = f();
    let elapsed_ms = t.elapsed().as_secs_f64() * 1.0e3;
    let mut section = obs::snapshot().to_json();
    if let Value::Obj(map) = &mut section {
        map.insert("label".to_string(), label.into());
        map.insert("ms".to_string(), elapsed_ms.into());
    }
    if let Some(c) = COLLECTOR.lock().unwrap().as_mut() {
        c.sections.push(section);
    }
    out
}

/// Finish the report: write `results/run_<experiment>.json` (directory
/// overridable via `PREBOND3D_REPORT_DIR`) and return its path. `None`
/// when no collector is active; write errors are reported on stderr rather
/// than aborting the experiment (the text output already happened).
pub fn finish() -> Option<PathBuf> {
    let collector = COLLECTOR.lock().unwrap().take()?;
    let doc = Value::obj([
        ("experiment", collector.experiment.as_str().into()),
        (
            "elapsed_ms",
            (collector.started.elapsed().as_secs_f64() * 1.0e3).into(),
        ),
        ("sections", Value::Arr(collector.sections)),
    ]);
    let dir = std::env::var("PREBOND3D_REPORT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("run report: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("run_{}.json", collector.experiment));
    match std::fs::write(&path, format!("{doc}\n")) {
        Ok(()) => {
            eprintln!("run report: {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("run report: cannot write {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is global state shared with any other test in this
    // binary that records; serialize access.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn inactive_scope_is_a_plain_call() {
        let _l = LOCK.lock().unwrap();
        assert!(COLLECTOR.lock().unwrap().is_none());
        let out = die_scope("x", || 41 + 1);
        assert_eq!(out, 42);
    }

    #[test]
    fn report_roundtrips_through_the_json_parser() {
        let _l = LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("prebond3d_report_test");
        std::env::set_var("PREBOND3D_REPORT_DIR", &dir);

        begin("unit");
        let v = die_scope("die0", || {
            let _s = obs::span("unit_phase");
            obs::count("unit.counter", 3);
            7
        });
        assert_eq!(v, 7);
        let path = finish().expect("report written");
        std::env::remove_var("PREBOND3D_REPORT_DIR");
        let text = std::fs::read_to_string(&path).unwrap();

        let doc = prebond3d_obs::json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("experiment").unwrap().as_str(), Some("unit"));
        let sections = doc.get("sections").unwrap().as_arr().unwrap();
        assert_eq!(sections.len(), 1);
        let sec = &sections[0];
        assert_eq!(sec.get("label").unwrap().as_str(), Some("die0"));
        assert_eq!(
            sec.get("counters").unwrap().get("unit.counter").unwrap().as_u64(),
            Some(3)
        );
        let spans = sec.get("spans").unwrap().as_arr().unwrap();
        assert!(spans
            .iter()
            .any(|s| s.get("path").unwrap().as_str() == Some("unit_phase")));
    }
}

//! Machine-readable run reports, checkpoint/resume and the perf
//! trajectory.
//!
//! Every experiment binary wraps its work in [`begin`]/[`finish`] (via
//! [`crate::driver::run`]); the table modules bracket each die's work
//! with [`die_scope`] (serial), [`par_die_scopes`] (one pool worker per
//! die) or [`resilient_par_die_scopes`] (the same, plus per-unit panic
//! isolation and crash-safe checkpointing). The result is one
//! `results/run_<experiment>.json` per invocation, holding per-die phase
//! timings (the `flow/...` span tree), the algorithm counters the text
//! tables do not show, the chaos/degradation/failed-unit records from
//! `prebond3d-resilience` — plus one `BENCH_<experiment>.json` with the
//! aggregated wall-time-per-phase breakdown, the thread count, and any
//! serial-vs-parallel speedup measurements recorded via
//! [`record_speedup`]. Both files are written atomically (temp file +
//! rename), so a `SIGKILL` mid-write never leaves a torn report.
//!
//! The collector forces `prebond3d-obs` recording on for the duration of
//! the run, independent of the `PREBOND3D_OBS` sink — so reports are
//! always written, while event streaming stays opt-in. When no collector
//! is active (unit tests calling `table3::run()` directly), the scopes
//! degrade to plain calls and no checkpoint is touched.
//!
//! ## Parallel sections and determinism
//!
//! Each die section is captured with [`obs::capture`], which aggregates
//! that worker's probes into a thread-local registry — workers never
//! touch (let alone reset) the global registry, and the collector pushes
//! sections **in submission order**, so the report's section list is
//! identical for any `PREBOND3D_THREADS`. Only the `ms` timings differ
//! run to run; every counter and span count is exact (counters commute —
//! each probe lands in exactly one section's registry). With
//! `PREBOND3D_STABLE_MS=1` the wall-clock fields are zeroed at [`finish`],
//! making reports byte-identical across runs — the mode the
//! kill-and-resume determinism suite runs under.
//!
//! ## Checkpoint/resume
//!
//! [`resilient_par_die_scopes`] persists one JSON line per completed unit
//! to `results/checkpoint_<experiment>.json` (keyed by a config hash over
//! the experiment name, the crate version and the circuit selection —
//! deliberately *not* the thread count). With `PREBOND3D_RESUME=1`,
//! [`begin`] loads the checkpoint and finished units are skipped: their
//! stored report section and decoded result are replayed, so an
//! interrupted sweep converges to the same final reports as an
//! uninterrupted one. Without resume, [`begin`] deletes any stale
//! checkpoint. A fully successful [`finish`] removes the checkpoint.

use std::any::Any;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

use prebond3d_obs as obs;
use prebond3d_obs::json::Value;
use prebond3d_pool as pool;
use prebond3d_resilience as resil;

/// Completed-unit map loaded from (and appended to) the checkpoint file.
struct Checkpoint {
    path: PathBuf,
    /// Config hash in the header; a mismatch discards the file.
    hash: u64,
    /// `"<scope>/<label>" → {key, section, result}` entries.
    done: BTreeMap<String, Value>,
    /// Units actually skipped via resume so far.
    skipped: u64,
}

struct Collector {
    experiment: String,
    started: Instant,
    sections: Vec<Value>,
    /// `span path → (completions, total ms)` aggregated across sections.
    phase_ms: BTreeMap<String, (u64, f64)>,
    /// `span path → histogram of per-section wall times (ns)` — one sample
    /// per section containing the span, so the sample *counts* are
    /// thread-invariant while the values are wall-clock (and zeroed under
    /// stable-ms). Checkpoint-replayed sections feed this identically.
    phase_hists: BTreeMap<String, obs::hist::Hist>,
    /// Peak of the per-section-boundary RSS samples, in kB.
    rss_kb: obs::hist::Hist,
    /// Speedup records from [`record_speedup`].
    speedups: Vec<Value>,
    /// Deterministic work-counter records from [`record_work`].
    work: Vec<Value>,
    /// Failed-unit records from [`record_failure`].
    failures: Vec<Value>,
    checkpoint: Checkpoint,
    /// Keeps obs aggregation on until `finish`.
    _recording: obs::RecordingGuard,
}

static COLLECTOR: Mutex<Option<Collector>> = Mutex::new(None);

/// Config hash for the checkpoint header: experiment name, crate version
/// and circuit selection. The thread count is deliberately excluded so a
/// sweep can be resumed at any `PREBOND3D_THREADS`.
fn config_hash(experiment: &str) -> u64 {
    let selection = crate::context::try_circuit_names().map_or_else(|e| e, |names| names.join(","));
    let mut h = resil::fnv1a(experiment.as_bytes());
    h = resil::fnv1a_more(h, b"\0");
    h = resil::fnv1a_more(h, env!("CARGO_PKG_VERSION").as_bytes());
    h = resil::fnv1a_more(h, b"\0");
    resil::fnv1a_more(h, selection.as_bytes())
}

/// Start collecting a run report for `experiment`. Replaces any collector
/// left over from an earlier, unfinished run. With `PREBOND3D_RESUME=1`
/// the experiment's checkpoint (if any, and only if its config hash
/// matches) is loaded so finished units can be skipped; otherwise any
/// stale checkpoint is deleted and the sweep starts fresh.
pub fn begin(experiment: &str) {
    let path = report_dir().join(format!("checkpoint_{experiment}.json"));
    let hash = config_hash(experiment);
    let mut done = BTreeMap::new();
    if resil::resume_enabled() {
        for line in resil::io::load_checkpoint(&path, hash).unwrap_or_default() {
            match obs::json::parse(&line) {
                Ok(entry) => {
                    if let Some(key) = entry.get("key").and_then(Value::as_str) {
                        done.insert(key.to_string(), entry);
                    }
                }
                // A corrupt interior line (e.g. a crash-terminated
                // fragment) only costs re-running that one unit.
                Err(e) => eprintln!(
                    "resume: skipping unreadable checkpoint line in {}: {e}",
                    path.display()
                ),
            }
        }
        if !done.is_empty() {
            eprintln!(
                "resume: {} finished unit(s) loaded from {}",
                done.len(),
                path.display()
            );
        }
    } else {
        let _ = std::fs::remove_file(&path);
    }
    let collector = Collector {
        experiment: experiment.to_string(),
        started: Instant::now(),
        sections: Vec::new(),
        phase_ms: BTreeMap::new(),
        phase_hists: BTreeMap::new(),
        rss_kb: obs::hist::Hist::new(),
        speedups: Vec::new(),
        work: Vec::new(),
        failures: Vec::new(),
        checkpoint: Checkpoint {
            path,
            hash,
            done,
            skipped: 0,
        },
        _recording: obs::record(),
    };
    *COLLECTOR.lock().unwrap() = Some(collector);
    obs::reset();
}

fn collector_active() -> bool {
    COLLECTOR.lock().unwrap().is_some()
}

/// Build the JSON payload of one report section.
fn section_value(label: &str, elapsed_ms: f64, snap: &obs::Snapshot) -> Value {
    let mut section = snap.to_json();
    if let Value::Obj(map) = &mut section {
        map.insert("label".to_string(), label.into());
        map.insert("ms".to_string(), elapsed_ms.into());
    }
    section
}

/// Push a section payload and fold its spans into the collector's phase
/// aggregation. Fresh and checkpoint-replayed sections go through this
/// same path, so a resumed run aggregates exactly like an uninterrupted
/// one.
fn push_section_value(section: Value) {
    if let Some(c) = COLLECTOR.lock().unwrap().as_mut() {
        if let Some(Value::Arr(spans)) = section.get("spans") {
            for s in spans {
                let (Some(path), Some(count), Some(ms)) = (
                    s.get("path").and_then(Value::as_str),
                    s.get("count").and_then(Value::as_u64),
                    s.get("ms").and_then(Value::as_f64),
                ) else {
                    continue;
                };
                let e = c.phase_ms.entry(path.to_string()).or_insert((0, 0.0));
                e.0 += count;
                e.1 += ms;
                // One latency sample per section: the per-die wall-time
                // distribution of this phase.
                c.phase_hists
                    .entry(path.to_string())
                    .or_default()
                    .record((ms.max(0.0) * 1.0e6) as u64);
            }
        }
        // RSS sampled at the section boundary (the "phase boundary" of a
        // sweep); the count is the section count, the values wall-clock-ish
        // (allocator-dependent) and zeroed under stable-ms.
        if let Some(kb) = obs::mem::rss_now_kb() {
            c.rss_kb.record(kb);
        }
        c.sections.push(section);
    }
}

/// Record a failed unit: it appears in the run report's `failures` array
/// and drives the partial-failure exit code (see [`crate::driver`]).
pub fn record_failure(label: &str, error: &str) {
    record_failure_with(label, error, None);
}

/// [`record_failure`] carrying the unit's partial obs capture — the
/// spans/counters/hists it recorded up to the panic — so a post-mortem
/// has telemetry instead of just a message. `resilient_par_die_scopes`
/// drains each panicking unit's capture through here.
pub fn record_failure_with(label: &str, error: &str, partial: Option<Value>) {
    eprintln!("unit failed: {label}: {error}");
    if let Some(c) = COLLECTOR.lock().unwrap().as_mut() {
        let mut fields = vec![("label", Value::from(label)), ("error", error.into())];
        if let Some(partial) = partial {
            fields.push(("partial", partial));
        }
        c.failures.push(Value::obj(fields));
    }
}

/// Render a panic payload (what `catch_unwind` returns) as a message.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Run `f` as one report section (typically one die), capturing the obs
/// spans/counters it produces. A plain call when no collector is active.
pub fn die_scope<T>(label: &str, f: impl FnOnce() -> T) -> T {
    if !collector_active() {
        return f();
    }
    let t = Instant::now();
    let (out, snap) = obs::capture(f);
    push_section_value(section_value(
        label,
        t.elapsed().as_secs_f64() * 1.0e3,
        &snap,
    ));
    out
}

/// Run `run` over `items` on the pool (chunk size 1). `run` must be
/// panic-free (catch its unit's panics internally); if the pool itself is
/// poisoned — e.g. a chaos panic injected in the worker loop proper —
/// the poisoning is recorded as a degradation and every item is re-run
/// serially, off the pool, so one poisoned worker never kills a sweep.
pub(crate) fn pool_with_poison_fallback<C, R>(items: &[C], run: impl Fn(&C) -> R + Sync) -> Vec<R>
where
    C: Sync,
    R: Send,
{
    match catch_unwind(AssertUnwindSafe(|| pool::par_map_chunked(items, 1, &run))) {
        Ok(results) => results,
        Err(p) => {
            resil::degrade::record(
                "pool",
                "serial_fallback",
                format!(
                    "worker pool poisoned by `{}`; re-running {} unit(s) serially",
                    panic_message(p.as_ref()),
                    items.len()
                ),
            );
            items.iter().map(run).collect()
        }
    }
}

/// Parallel [`die_scope`]: run `f` over `cases` on the pool, one section
/// per case. Outputs **and** report sections come back in `cases` order
/// regardless of thread count — each worker captures its own probes
/// thread-locally and the merge happens here, serially. With no active
/// collector the cases still run on the pool; only the sections are
/// skipped. A unit panic propagates; use [`resilient_par_die_scopes`]
/// for isolation.
pub fn par_die_scopes<C, T>(
    cases: &[C],
    label: impl Fn(&C) -> String + Sync,
    f: impl Fn(&C) -> T + Sync,
) -> Vec<T>
where
    C: Sync,
    T: Send,
{
    let active = collector_active();
    // Chunk size 1: dies are few and heavy, so each is its own work unit.
    let results = pool::par_map_chunked(cases, 1, |case| {
        let t = Instant::now();
        let (out, snap) = if active {
            obs::capture(|| f(case))
        } else {
            (f(case), obs::Snapshot::empty())
        };
        (out, t.elapsed().as_secs_f64() * 1.0e3, snap)
    });
    results
        .into_iter()
        .zip(cases)
        .map(|((out, ms, snap), case)| {
            if active {
                push_section_value(section_value(&label(case), ms, &snap));
            }
            out
        })
        .collect()
}

/// [`par_die_scopes`] with per-unit panic isolation and crash-safe
/// checkpointing. Each unit runs under `catch_unwind`; a panicking unit
/// yields `None`, is recorded via [`record_failure`] and the rest of the
/// sweep completes. Each *successful* unit is appended to the
/// experiment's checkpoint as `{key, section, result}` (the result
/// serialized by `encode`), and with `PREBOND3D_RESUME=1` previously
/// finished units are skipped: their stored section is replayed into the
/// report and their result revived via `decode`. `scope` namespaces the
/// checkpoint keys, so several scopes (the `all_experiments` driver runs
/// six) share one checkpoint file without colliding.
///
/// With no active collector this is just the panic-isolated variant — no
/// checkpoint is read or written.
pub fn resilient_par_die_scopes<C, T>(
    scope: &str,
    cases: &[C],
    label: impl Fn(&C) -> String + Sync,
    f: impl Fn(&C) -> T + Sync,
    encode: impl Fn(&T) -> Value + Sync,
    decode: impl Fn(&Value) -> Option<T>,
) -> Vec<Option<T>>
where
    C: Sync,
    T: Send,
{
    let active = collector_active();
    // Resolve resume hits up front so only the misses hit the pool.
    let mut cached: Vec<Option<(Value, T)>> = cases
        .iter()
        .map(|case| {
            if !active {
                return None;
            }
            let key = format!("{scope}/{}", label(case));
            let entry = checkpoint_entry(&key)?;
            let section = entry.get("section")?.clone();
            let result = decode(entry.get("result")?)?;
            Some((section, result))
        })
        .collect();
    let todo: Vec<&C> = cases
        .iter()
        .zip(&cached)
        .filter(|(_, hit)| hit.is_none())
        .map(|(case, _)| case)
        .collect();
    // Each unit appends its checkpoint entry *as it completes*, from the
    // worker itself — a kill at any point during the sweep loses at most
    // the units still in flight, which is the whole point of resuming.
    let run_one = |case: &&C| {
        let t = Instant::now();
        let (res, snap) = if active {
            obs::capture(|| catch_unwind(AssertUnwindSafe(|| f(case))))
        } else {
            (
                catch_unwind(AssertUnwindSafe(|| f(case))),
                obs::Snapshot::empty(),
            )
        };
        let ms = t.elapsed().as_secs_f64() * 1.0e3;
        match res {
            Ok(v) => {
                let section = active.then(|| {
                    let name = label(case);
                    let section = section_value(&name, ms, &snap);
                    let entry = Value::obj([
                        ("key", format!("{scope}/{name}").as_str().into()),
                        ("section", section.clone()),
                        ("result", encode(&v)),
                    ]);
                    checkpoint_append(&entry);
                    section
                });
                Ok((v, section))
            }
            Err(p) => {
                // The capture survived the unwind (span guards record on
                // drop), so the panicking unit's partial telemetry rides
                // along into its `failures[]` entry.
                let partial =
                    (active && !snap.is_empty()).then(|| section_value(&label(case), ms, &snap));
                Err((panic_message(p.as_ref()), partial))
            }
        }
    };
    let fresh = pool_with_poison_fallback(&todo, run_one);

    // Merge in submission order: replayed hits and fresh results
    // interleave back into `cases` order.
    let mut fresh_iter = fresh.into_iter();
    let mut out = Vec::with_capacity(cases.len());
    for (case, hit) in cases.iter().zip(cached.iter_mut()) {
        if let Some((section, result)) = hit.take() {
            if active {
                push_section_value(section);
                note_skipped();
            }
            out.push(Some(result));
            continue;
        }
        match fresh_iter.next().expect("one fresh result per miss") {
            Ok((v, section)) => {
                if let Some(section) = section {
                    push_section_value(section);
                }
                out.push(Some(v));
            }
            Err((msg, partial)) => {
                record_failure_with(&label(case), &msg, partial);
                out.push(None);
            }
        }
    }
    out
}

fn checkpoint_entry(key: &str) -> Option<Value> {
    COLLECTOR
        .lock()
        .unwrap()
        .as_ref()?
        .checkpoint
        .done
        .get(key)
        .cloned()
}

fn note_skipped() {
    if let Some(c) = COLLECTOR.lock().unwrap().as_mut() {
        c.checkpoint.skipped += 1;
    }
}

/// Append one completed-unit entry to the checkpoint. Called from pool
/// workers as units complete, so appends are serialized by a dedicated
/// lock (the entry + newline go out in one write, but the
/// read-then-append inside `append_checkpoint` must not interleave). A
/// write failure is a degradation (the run continues; only resumability
/// of this unit is lost), recorded so the chaos suite sees the injected
/// fault reported.
fn checkpoint_append(entry: &Value) {
    static APPEND: Mutex<()> = Mutex::new(());
    let (path, hash) = {
        let guard = COLLECTOR.lock().unwrap();
        let Some(c) = guard.as_ref() else { return };
        (c.checkpoint.path.clone(), c.checkpoint.hash)
    };
    let _serialized = APPEND.lock().unwrap();
    if let Err(e) = resil::io::append_checkpoint(&path, hash, &entry.to_string()) {
        resil::degrade::record("checkpoint", "drop_entry", e.to_string());
    }
}

/// Record one serial-vs-parallel wall-clock measurement (written to
/// `BENCH_<experiment>.json`). A no-op when no collector is active.
pub fn record_speedup(
    phase: &str,
    substrate: &str,
    threads: usize,
    serial_ms: f64,
    parallel_ms: f64,
) {
    let speedup = if parallel_ms > 0.0 {
        serial_ms / parallel_ms
    } else {
        0.0
    };
    eprintln!(
        "perf: {phase} on {substrate}: {serial_ms:.1} ms serial, \
         {parallel_ms:.1} ms at {threads} threads ({speedup:.2}x)"
    );
    if let Some(c) = COLLECTOR.lock().unwrap().as_mut() {
        c.speedups.push(Value::obj([
            ("phase", phase.into()),
            ("substrate", substrate.into()),
            ("threads", threads.into()),
            ("serial_ms", serial_ms.into()),
            ("parallel_ms", parallel_ms.into()),
            ("speedup", speedup.into()),
        ]));
    }
}

/// Record one deterministic work-counter measurement (written to the
/// `work` array of `BENCH_<experiment>.json`). `reference` is the count
/// with the hot-path caches disabled (`PREBOND3D_NO_CACHE=1` semantics,
/// i.e. the pre-optimization algorithm), `optimized` the count with them
/// on. Work counters are machine-independent, so — unlike the wall-clock
/// speedups — they are **not** zeroed under `PREBOND3D_STABLE_MS` and can
/// be regression-gated in CI. A no-op when no collector is active.
pub fn record_work(counter: &str, substrate: &str, reference: u64, optimized: u64) {
    let reduction = if reference > 0 {
        1.0 - optimized as f64 / reference as f64
    } else {
        0.0
    };
    eprintln!(
        "perf: {counter} on {substrate}: {reference} reference vs {optimized} optimized \
         ({:.1}% less work)",
        reduction * 100.0
    );
    if let Some(c) = COLLECTOR.lock().unwrap().as_mut() {
        c.work.push(Value::obj([
            ("counter", counter.into()),
            ("substrate", substrate.into()),
            ("reference", reference.into()),
            ("optimized", optimized.into()),
            ("reduction", reduction.into()),
        ]));
    }
}

pub(crate) fn report_dir() -> PathBuf {
    std::env::var("PREBOND3D_REPORT_DIR").map_or_else(|_| PathBuf::from("results"), PathBuf::from)
}

/// Atomic report write with a contextual error naming the file. Write
/// errors are reported on stderr rather than aborting the experiment
/// (the text output already happened).
fn write_report(path: &std::path::Path, doc: &Value) -> bool {
    match resil::atomic_write(path, &format!("{doc}\n")) {
        Ok(()) => {
            eprintln!("run report: {}", path.display());
            true
        }
        Err(e) => {
            eprintln!("run report: {e}");
            false
        }
    }
}

/// Zero every environment-dependent field in `doc` — wall clocks (`ms`,
/// `elapsed_ms`, `serial_ms`, `parallel_ms`, the derived `speedup` ratio),
/// the `threads` count, any `*_ns` latency field, the memory-telemetry
/// fields, and the *value* summary of every histogram object (`sum`,
/// `max`, quantiles — the sample `count` is deterministic and survives) —
/// the `PREBOND3D_STABLE_MS` normalization that makes reports
/// byte-comparable across runs and thread counts.
pub(crate) fn zero_ms(v: &mut Value) {
    match v {
        Value::Obj(map) => {
            // A histogram summary (obs::hist::Hist::to_json) is the one
            // object shape whose `max`/`sum` are wall-clock-bearing.
            let is_hist = ["count", "p50", "p95", "p99"]
                .iter()
                .all(|k| map.contains_key(*k));
            for (k, v) in map.iter_mut() {
                let is_clock = matches!(
                    k.as_str(),
                    "ms" | "elapsed_ms"
                        | "serial_ms"
                        | "parallel_ms"
                        | "speedup"
                        | "jobs_per_sec"
                        | "threads"
                        | "alloc_bytes_total"
                        | "alloc_bytes_peak"
                        | "rss_now_kb"
                        | "rss_peak_kb"
                ) || k.ends_with("_ns")
                    || (is_hist && matches!(k.as_str(), "sum" | "max" | "p50" | "p95" | "p99"));
                if is_clock && matches!(v, Value::Num(_)) {
                    *v = 0.0.into();
                } else {
                    zero_ms(v);
                }
            }
        }
        Value::Arr(items) => items.iter_mut().for_each(zero_ms),
        _ => {}
    }
}

/// What [`finish_summary`] hands back to the driver.
#[derive(Debug)]
pub struct Summary {
    /// Path of `run_<exp>.json`, when it was written.
    pub run_path: Option<PathBuf>,
    /// Failed units recorded via [`record_failure`].
    pub failures: usize,
    /// Units skipped by checkpoint resume.
    pub resume_skipped: u64,
}

/// Finish the report: write `results/run_<experiment>.json` and
/// `results/BENCH_<experiment>.json` (directory overridable via
/// `PREBOND3D_REPORT_DIR`) and return the run report's path. `None` when
/// no collector is active. See [`finish_summary`] for the exit-code
/// driving variant.
pub fn finish() -> Option<PathBuf> {
    finish_summary().run_path
}

/// [`finish`], returning the failure/resume tallies the drivers map to
/// exit codes. Also folds the drained chaos events and degradation
/// records into the run report, applies the stable-ms normalization, and
/// removes the checkpoint after a fully successful sweep.
pub fn finish_summary() -> Summary {
    let Some(collector) = COLLECTOR.lock().unwrap().take() else {
        return Summary {
            run_path: None,
            failures: 0,
            resume_skipped: 0,
        };
    };
    let elapsed_ms = collector.started.elapsed().as_secs_f64() * 1.0e3;
    let failures = collector.failures.len();
    let resume_skipped = collector.checkpoint.skipped;

    let degradations: Vec<Value> = resil::degrade::drain()
        .into_iter()
        .map(|d| {
            Value::obj([
                ("phase", d.phase.into()),
                ("action", d.action.into()),
                ("detail", d.detail.as_str().into()),
            ])
        })
        .collect();
    let chaos_events: Vec<Value> = resil::chaos::drain_events()
        .into_iter()
        .map(|e| {
            Value::obj([
                ("site", e.site.into()),
                ("kind", e.kind.label().into()),
                ("seq", e.seq.into()),
            ])
        })
        .collect();
    let mut chaos_fields = vec![("armed", Value::Bool(resil::chaos::armed()))];
    if let Some((seed, rate)) = resil::chaos::config() {
        chaos_fields.push(("seed", seed.into()));
        chaos_fields.push(("rate", rate.into()));
    }
    chaos_fields.push(("events", Value::Arr(chaos_events)));

    // Memory telemetry: allocator counters when the obs-alloc feature is
    // on, kernel RSS where /proc exists, plus the per-section RSS samples.
    // All nondeterministic, so every field is zeroed under stable-ms.
    let mut mem_fields: Vec<(&'static str, Value)> = Vec::new();
    if let Some((total, _current, peak)) = obs::alloc_stats() {
        mem_fields.push(("alloc_bytes_total", total.into()));
        mem_fields.push(("alloc_bytes_peak", peak.into()));
    }
    if let Some(kb) = obs::mem::rss_now_kb() {
        mem_fields.push(("rss_now_kb", kb.into()));
    }
    if let Some(kb) = obs::mem::rss_peak_kb() {
        mem_fields.push(("rss_peak_kb", kb.into()));
    }
    mem_fields.push(("rss_sampled_kb", collector.rss_kb.to_json()));
    let mem = Value::obj(mem_fields);

    // Per-phase wall-time distributions: `path → hist summary`, one
    // sample per section. Sample counts are thread-invariant; values are
    // wall-clock and zeroed under stable-ms like every hist.
    let hists = Value::Obj(
        collector
            .phase_hists
            .iter()
            .map(|(path, h)| (path.clone(), h.to_json()))
            .collect(),
    );

    let mut run_doc = Value::obj([
        ("experiment", collector.experiment.as_str().into()),
        ("elapsed_ms", elapsed_ms.into()),
        ("sections", Value::Arr(collector.sections)),
        ("hists", hists),
        ("mem", mem.clone()),
        ("failures", Value::Arr(collector.failures)),
        ("degradations", Value::Arr(degradations)),
        ("chaos", Value::obj(chaos_fields)),
    ]);
    let phases: Vec<Value> = collector
        .phase_ms
        .iter()
        .map(|(path, &(count, ms))| {
            let h = collector.phase_hists.get(path);
            Value::obj([
                ("path", path.as_str().into()),
                ("count", count.into()),
                ("ms", ms.into()),
                ("p50_ns", h.map_or(0, |h| h.quantile(0.50)).into()),
                ("p95_ns", h.map_or(0, |h| h.quantile(0.95)).into()),
                ("p99_ns", h.map_or(0, |h| h.quantile(0.99)).into()),
                ("max_ns", h.map_or(0, obs::hist::Hist::max).into()),
            ])
        })
        .collect();
    // Worker idle-gap telemetry from the pool. Chunk counts depend on the
    // thread configuration, so under stable-ms the whole histogram —
    // including its count — is replaced by an empty one.
    let chunk_wait = pool::drain_chunk_wait();
    let chunk_wait = if resil::stable_ms() {
        obs::hist::Hist::new()
    } else {
        chunk_wait
    };
    let mut bench_doc = Value::obj([
        ("experiment", collector.experiment.as_str().into()),
        ("threads", pool::threads().into()),
        ("elapsed_ms", elapsed_ms.into()),
        ("phases", Value::Arr(phases)),
        ("pool", Value::obj([("chunk_wait", chunk_wait.to_json())])),
        ("mem", mem),
        ("speedup", Value::Arr(collector.speedups)),
        ("work", Value::Arr(collector.work)),
    ]);
    if resil::stable_ms() {
        zero_ms(&mut run_doc);
        zero_ms(&mut bench_doc);
    }
    // A traced run flushes its timeline alongside the reports, so a
    // normally-completed experiment leaves a complete trace file without
    // relying on the panic hook.
    obs::trace::flush();

    let dir = report_dir();
    let bench_path = dir.join(format!("BENCH_{}.json", collector.experiment));
    write_report(&bench_path, &bench_doc);
    let run_path = dir.join(format!("run_{}.json", collector.experiment));
    let run_path = write_report(&run_path, &run_doc).then_some(run_path);
    if failures == 0 {
        // The sweep is complete; a later fresh run must not resume it.
        let _ = std::fs::remove_file(&collector.checkpoint.path);
    }
    if resume_skipped > 0 {
        eprintln!("resume: skipped {resume_skipped} finished unit(s)");
    }
    Summary {
        run_path,
        failures,
        resume_skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is global state shared with any other test in this
    // binary that records; serialize access.
    static LOCK: Mutex<()> = Mutex::new(());

    fn temp_report_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("prebond3d_report_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn inactive_scope_is_a_plain_call() {
        let _l = LOCK.lock().unwrap();
        assert!(COLLECTOR.lock().unwrap().is_none());
        let out = die_scope("x", || 41 + 1);
        assert_eq!(out, 42);
        let outs = par_die_scopes(&[1, 2, 3], |c| format!("c{c}"), |&c| c * 10);
        assert_eq!(outs, vec![10, 20, 30]);
        // The resilient variant still isolates panics without a collector.
        let outs = resilient_par_die_scopes(
            "t",
            &[1usize, 2, 3],
            |c| format!("c{c}"),
            |&c| {
                assert!(c != 2, "unit 2 explodes");
                c * 10
            },
            |v| (*v).into(),
            |v| v.as_u64().map(|n| n as usize),
        );
        assert_eq!(outs, vec![Some(10), None, Some(30)]);
    }

    #[test]
    fn report_roundtrips_through_the_json_parser() {
        let _l = LOCK.lock().unwrap();
        let dir = temp_report_dir("rt");
        std::env::set_var("PREBOND3D_REPORT_DIR", &dir);

        begin("unit");
        let v = die_scope("die0", || {
            let _s = obs::span("unit_phase");
            obs::count("unit.counter", 3);
            7
        });
        assert_eq!(v, 7);
        let path = finish().expect("report written");
        std::env::remove_var("PREBOND3D_REPORT_DIR");
        let text = std::fs::read_to_string(&path).unwrap();

        let doc = prebond3d_obs::json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("experiment").unwrap().as_str(), Some("unit"));
        let sections = doc.get("sections").unwrap().as_arr().unwrap();
        assert_eq!(sections.len(), 1);
        let sec = &sections[0];
        assert_eq!(sec.get("label").unwrap().as_str(), Some("die0"));
        assert_eq!(
            sec.get("counters")
                .unwrap()
                .get("unit.counter")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        let spans = sec.get("spans").unwrap().as_arr().unwrap();
        assert!(spans
            .iter()
            .any(|s| s.get("path").unwrap().as_str() == Some("unit_phase")));
        // The resilience fields are always present.
        assert!(doc.get("failures").unwrap().as_arr().unwrap().is_empty());
        assert!(doc.get("degradations").is_some());
        assert_eq!(
            doc.get("chaos").unwrap().get("armed").unwrap().as_bool(),
            Some(false)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_sections_keep_submission_order_and_exact_counters() {
        let _l = LOCK.lock().unwrap();
        let dir = temp_report_dir("par");
        std::env::set_var("PREBOND3D_REPORT_DIR", &dir);

        let cases: Vec<u64> = (0..6).collect();
        begin("unit_par");
        let outs = pool::with_threads(4, || {
            par_die_scopes(
                &cases,
                |c| format!("die{c}"),
                |&c| {
                    let _s = obs::span("work");
                    obs::count("work.items", c + 1);
                    c * 2
                },
            )
        });
        assert_eq!(outs, vec![0, 2, 4, 6, 8, 10]);
        let path = finish().expect("report written");
        std::env::remove_var("PREBOND3D_REPORT_DIR");

        let doc = prebond3d_obs::json::parse(&std::fs::read_to_string(&path).unwrap())
            .expect("valid JSON");
        let sections = doc.get("sections").unwrap().as_arr().unwrap();
        let labels: Vec<&str> = sections
            .iter()
            .map(|s| s.get("label").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(labels, ["die0", "die1", "die2", "die3", "die4", "die5"]);
        for (i, sec) in sections.iter().enumerate() {
            assert_eq!(
                sec.get("counters")
                    .unwrap()
                    .get("work.items")
                    .unwrap()
                    .as_u64(),
                Some(i as u64 + 1),
                "each section holds exactly its own worker's counters"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_report_carries_phases_and_speedups() {
        let _l = LOCK.lock().unwrap();
        let dir = temp_report_dir("bench");
        std::env::set_var("PREBOND3D_REPORT_DIR", &dir);

        begin("unit_bench");
        die_scope("die0", || {
            let _s = obs::span("phase_a");
        });
        die_scope("die1", || {
            let _s = obs::span("phase_a");
        });
        record_speedup("fault_simulation", "b12_die0", 4, 100.0, 40.0);
        record_work("atpg.gate_evals", "b12_die0", 1000, 400);
        let run_path = finish().expect("report written");
        std::env::remove_var("PREBOND3D_REPORT_DIR");

        let bench_path = run_path.with_file_name("BENCH_unit_bench.json");
        let doc = prebond3d_obs::json::parse(&std::fs::read_to_string(&bench_path).unwrap())
            .expect("valid JSON");
        assert_eq!(doc.get("experiment").unwrap().as_str(), Some("unit_bench"));
        assert!(doc.get("threads").unwrap().as_u64().unwrap() >= 1);
        let phases = doc.get("phases").unwrap().as_arr().unwrap();
        let pa = phases
            .iter()
            .find(|p| p.get("path").unwrap().as_str() == Some("phase_a"))
            .expect("phase_a aggregated");
        assert_eq!(pa.get("count").unwrap().as_u64(), Some(2));
        let speedups = doc.get("speedup").unwrap().as_arr().unwrap();
        assert_eq!(speedups.len(), 1);
        let s = &speedups[0];
        assert_eq!(s.get("phase").unwrap().as_str(), Some("fault_simulation"));
        assert_eq!(s.get("speedup").unwrap().as_u64(), None); // 2.5 is not integral
        assert!((s.get("speedup").unwrap().as_f64().unwrap() - 2.5).abs() < 1e-9);
        let work = doc.get("work").unwrap().as_arr().unwrap();
        assert_eq!(work.len(), 1);
        let w = &work[0];
        assert_eq!(w.get("counter").unwrap().as_str(), Some("atpg.gate_evals"));
        assert_eq!(w.get("reference").unwrap().as_u64(), Some(1000));
        assert_eq!(w.get("optimized").unwrap().as_u64(), Some(400));
        assert!((w.get("reduction").unwrap().as_f64().unwrap() - 0.6).abs() < 1e-9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_units_are_recorded_and_the_rest_survive() {
        let _l = LOCK.lock().unwrap();
        let dir = temp_report_dir("fail");
        std::env::set_var("PREBOND3D_REPORT_DIR", &dir);

        begin("unit_fail");
        let outs = resilient_par_die_scopes(
            "t",
            &[1usize, 2, 3],
            |c| format!("die{c}"),
            |&c| {
                assert!(c != 2, "unit die2 explodes");
                c * 10
            },
            |v| (*v).into(),
            |v| v.as_u64().map(|n| n as usize),
        );
        assert_eq!(outs, vec![Some(10), None, Some(30)]);
        let summary = finish_summary();
        std::env::remove_var("PREBOND3D_REPORT_DIR");
        assert_eq!(summary.failures, 1);
        let doc = prebond3d_obs::json::parse(
            &std::fs::read_to_string(summary.run_path.expect("report written")).unwrap(),
        )
        .expect("valid JSON");
        let failures = doc.get("failures").unwrap().as_arr().unwrap();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].get("label").unwrap().as_str(), Some("die2"));
        assert!(failures[0]
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("explodes"));
        // Successful units got sections; the failed one did not.
        let sections = doc.get("sections").unwrap().as_arr().unwrap();
        assert_eq!(sections.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_resume_skips_finished_units() {
        let _l = LOCK.lock().unwrap();
        let dir = temp_report_dir("ckpt");
        std::env::set_var("PREBOND3D_REPORT_DIR", &dir);
        resil::force_stable_ms(Some(true));

        let encode = |v: &usize| Value::from(*v);
        let decode = |v: &Value| v.as_u64().map(|n| n as usize);
        let work = |&c: &usize| {
            obs::count("unit.calls", 1);
            c * 10
        };

        // First run: two of three units succeed, one fails — the
        // checkpoint holds the two and survives `finish`.
        begin("unit_resume");
        let outs = resilient_par_die_scopes(
            "t",
            &[1usize, 2, 3],
            |c| format!("die{c}"),
            |c| {
                assert!(*c != 3, "die3 fails on the first attempt");
                work(c)
            },
            encode,
            decode,
        );
        assert_eq!(outs, vec![Some(10), Some(20), None]);
        let first = finish_summary();
        assert_eq!(first.failures, 1);
        let ckpt = dir.join("checkpoint_unit_resume.json");
        assert!(ckpt.exists(), "failed sweep keeps its checkpoint");

        // Resumed run: the two finished units are skipped, die3 runs.
        resil::force_resume(Some(true));
        begin("unit_resume");
        let outs = resilient_par_die_scopes(
            "t",
            &[1usize, 2, 3],
            |c| format!("die{c}"),
            work,
            encode,
            decode,
        );
        assert_eq!(outs, vec![Some(10), Some(20), Some(30)]);
        let second = finish_summary();
        resil::force_resume(None);
        assert_eq!(second.failures, 0);
        assert_eq!(second.resume_skipped, 2);
        assert!(!ckpt.exists(), "successful sweep removes its checkpoint");

        // The resumed report equals a from-scratch run byte for byte.
        let resumed = std::fs::read_to_string(second.run_path.expect("report")).unwrap();
        begin("unit_resume");
        let outs = resilient_par_die_scopes(
            "t",
            &[1usize, 2, 3],
            |c| format!("die{c}"),
            work,
            encode,
            decode,
        );
        assert_eq!(outs, vec![Some(10), Some(20), Some(30)]);
        let fresh_summary = finish_summary();
        let fresh = std::fs::read_to_string(fresh_summary.run_path.expect("report")).unwrap();
        assert_eq!(
            resumed, fresh,
            "resumed and fresh reports are byte-identical"
        );

        resil::force_stable_ms(None);
        std::env::remove_var("PREBOND3D_REPORT_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stable_ms_zeroes_every_clock_field() {
        let _l = LOCK.lock().unwrap();
        let dir = temp_report_dir("stable");
        std::env::set_var("PREBOND3D_REPORT_DIR", &dir);
        resil::force_stable_ms(Some(true));

        begin("unit_stable");
        die_scope("die0", || {
            let _s = obs::span("phase_a");
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        record_speedup("fault_simulation", "x", 2, 10.0, 5.0);
        let run_path = finish().expect("report written");
        resil::force_stable_ms(None);
        std::env::remove_var("PREBOND3D_REPORT_DIR");

        fn assert_zero(v: &Value) {
            match v {
                Value::Obj(map) => {
                    for (k, v) in map {
                        if matches!(
                            k.as_str(),
                            "ms" | "elapsed_ms"
                                | "serial_ms"
                                | "parallel_ms"
                                | "speedup"
                                | "threads"
                        ) && matches!(v, Value::Num(_))
                        {
                            assert_eq!(v.as_f64(), Some(0.0), "field `{k}` must be zeroed");
                        }
                        assert_zero(v);
                    }
                }
                Value::Arr(items) => items.iter().for_each(assert_zero),
                _ => {}
            }
        }
        for path in [
            run_path.clone(),
            run_path.with_file_name("BENCH_unit_stable.json"),
        ] {
            let doc = prebond3d_obs::json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
            assert_zero(&doc);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

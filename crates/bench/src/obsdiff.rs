//! Report diffing: align two run/BENCH reports and gate regressions.
//!
//! This is the library behind the `obs-diff` binary, which replaces the
//! hand-rolled python comparison the CI perf-smoke job used to inline.
//! Given a *baseline* and a *current* report (either `BENCH_<exp>.json`
//! or `run_<exp>.json` — the document shape is sniffed per block), it
//! aligns:
//!
//! * `work[]` rows by `(counter, substrate)` — the deterministic
//!   work-counter measurements. Rows whose counter is in
//!   [`GATED_COUNTERS`] are **gated**: a current `optimized` value more
//!   than `threshold_pct` percent above the baseline, or a gated row
//!   missing from the current report, is a regression. Rows in
//!   [`FLOOR_GATED_COUNTERS`] gate the other direction: the counter
//!   measures work *avoided* (statically pruned faults), so a shrink
//!   beyond the threshold means the analysis went blind. Cache hit/miss
//!   rows stay informational (more hits is *better*).
//! * `phases[]` rows by span path — `count` and `ms` plus the latency
//!   quantiles, informational (wall clocks are machine-dependent, and
//!   CI runs them zeroed under `PREBOND3D_STABLE_MS` anyway).
//! * `hists` entries by name (run reports) — sample counts and quantiles,
//!   informational.
//! * `counters` summed across `sections[]` (run reports), informational.
//! * `mem` fields, informational.
//!
//! [`DiffReport::regressed`] drives the binary's exit code: 0 clean,
//! 1 regression, 2 usage/parse error.

use prebond3d_obs::json::Value;

/// Deterministic work counters whose growth fails the gate. Matches the
/// set the perf experiment records via `report::record_work` plus the
/// serving loadgen's miss counter (`BENCH_serve.json`): a cold rebuild
/// that should have been a warm hit is a regression, while hit/eviction
/// rows stay informational (more hits is *better*).
pub const GATED_COUNTERS: [&str; 6] = [
    "atpg.gate_evals",
    "atpg.pattern_batches",
    "graph.cone_word_ops",
    "clique.candidate_rescores",
    "serve.cache_misses",
    "sta.node_retimes",
];

/// Deterministic counters whose *shrink* fails the gate: they measure
/// work statically avoided (dataflow-pruned faults) or robustness
/// machinery exercised (journal orphans replayed, over-limit submits
/// shed), so a drop below the baseline by more than the threshold means
/// the analysis went blind — or the crash-recovery / backpressure
/// drills silently stopped covering what they used to.
pub const FLOOR_GATED_COUNTERS: [&str; 3] = [
    "atpg.faults_pruned",
    "serve.recovered",
    "serve.shed",
];

/// One aligned comparison row.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Block the row came from: `work`, `phase`, `hist`, `counter`, `mem`.
    pub kind: &'static str,
    /// Alignment key (`atpg.gate_evals on b12_die0`, `flow/plan`, …).
    pub key: String,
    /// Baseline value, when present.
    pub base: Option<f64>,
    /// Current value, when present.
    pub current: Option<f64>,
    /// Is this row held to the threshold?
    pub gated: bool,
    /// Did this row fail the gate?
    pub regressed: bool,
}

impl DiffRow {
    /// Relative change in percent (`None` without both sides or with a
    /// zero baseline).
    pub fn delta_pct(&self) -> Option<f64> {
        match (self.base, self.current) {
            (Some(b), Some(c)) if b != 0.0 => Some((c - b) / b * 100.0),
            _ => None,
        }
    }
}

/// The aligned diff of two reports.
#[derive(Debug)]
pub struct DiffReport {
    /// All aligned rows, gated first, each block in key order.
    pub rows: Vec<DiffRow>,
    /// The threshold applied to gated rows, in percent.
    pub threshold_pct: f64,
}

impl DiffReport {
    /// Did any gated row regress?
    pub fn regressed(&self) -> bool {
        self.rows.iter().any(|r| r.regressed)
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    v.as_f64()
}

/// `work[]` → `(counter, substrate) → optimized`, in document order.
fn work_rows(doc: &Value) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    if let Some(Value::Arr(rows)) = doc.get("work") {
        for w in rows {
            if let (Some(counter), Some(substrate), Some(opt)) = (
                w.get("counter").and_then(Value::as_str),
                w.get("substrate").and_then(Value::as_str),
                w.get("optimized").and_then(as_f64),
            ) {
                out.push((counter.to_string(), substrate.to_string(), opt));
            }
        }
    }
    out
}

/// `phases[]` → `path → map of numeric fields`.
fn phase_rows(doc: &Value) -> Vec<(String, Vec<(String, f64)>)> {
    let mut out = Vec::new();
    if let Some(Value::Arr(rows)) = doc.get("phases") {
        for p in rows {
            let Some(path) = p.get("path").and_then(Value::as_str) else {
                continue;
            };
            let mut fields = Vec::new();
            if let Value::Obj(map) = p {
                for (k, v) in map {
                    if k != "path" {
                        if let Some(n) = as_f64(v) {
                            fields.push((k.clone(), n));
                        }
                    }
                }
            }
            out.push((path.to_string(), fields));
        }
    }
    out
}

/// Top-level `hists` → `name → (count, p50, p95, p99)` rows flattened to
/// `name.field`.
fn hist_rows(doc: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(Value::Obj(map)) = doc.get("hists") {
        for (name, h) in map {
            for field in ["count", "p50", "p95", "p99"] {
                if let Some(n) = h.get(field).and_then(as_f64) {
                    out.push((format!("{name}.{field}"), n));
                }
            }
        }
    }
    out
}

/// Counters summed across `sections[]` (run reports).
fn counter_rows(doc: &Value) -> Vec<(String, f64)> {
    let mut sums: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    if let Some(Value::Arr(sections)) = doc.get("sections") {
        for s in sections {
            if let Some(Value::Obj(counters)) = s.get("counters") {
                for (k, v) in counters {
                    if let Some(n) = as_f64(v) {
                        *sums.entry(k.clone()).or_insert(0.0) += n;
                    }
                }
            }
        }
    }
    sums.into_iter().collect()
}

/// `mem` block numeric fields.
fn mem_rows(doc: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(Value::Obj(map)) = doc.get("mem") {
        for (k, v) in map {
            if let Some(n) = as_f64(v) {
                out.push((k.clone(), n));
            }
        }
    }
    out
}

fn align(
    kind: &'static str,
    base: Vec<(String, f64)>,
    current: Vec<(String, f64)>,
    rows: &mut Vec<DiffRow>,
) {
    let cur: std::collections::BTreeMap<_, _> = current.iter().cloned().collect();
    let base_keys: std::collections::BTreeSet<_> = base.iter().map(|(k, _)| k.clone()).collect();
    for (key, b) in base {
        rows.push(DiffRow {
            kind,
            key: key.clone(),
            base: Some(b),
            current: cur.get(&key).copied(),
            gated: false,
            regressed: false,
        });
    }
    for (key, c) in current {
        if !base_keys.contains(&key) {
            rows.push(DiffRow {
                kind,
                key,
                base: None,
                current: Some(c),
                gated: false,
                regressed: false,
            });
        }
    }
}

/// Align `base` and `current` report documents and apply the gate.
/// `threshold_pct` is the allowed growth of a gated work counter, in
/// percent (the CI gate uses 20).
pub fn diff(base: &Value, current: &Value, threshold_pct: f64) -> DiffReport {
    let mut rows = Vec::new();

    // Gated block first: work counters by (counter, substrate).
    let base_work = work_rows(base);
    let cur_work: std::collections::BTreeMap<(String, String), f64> = work_rows(current)
        .into_iter()
        .map(|(c, s, v)| ((c, s), v))
        .collect();
    let mut seen = std::collections::BTreeSet::new();
    for (counter, substrate, b) in base_work {
        let key = (counter.clone(), substrate.clone());
        seen.insert(key.clone());
        let floor = FLOOR_GATED_COUNTERS.contains(&counter.as_str());
        let gated = floor || GATED_COUNTERS.contains(&counter.as_str());
        let current_v = cur_work.get(&key).copied();
        let regressed = gated
            && match current_v {
                None => true, // a gated measurement vanished
                Some(c) if floor => c < b * (1.0 - threshold_pct / 100.0),
                Some(c) => c > b * (1.0 + threshold_pct / 100.0),
            };
        rows.push(DiffRow {
            kind: "work",
            key: format!("{counter} on {substrate}"),
            base: Some(b),
            current: current_v,
            gated,
            regressed,
        });
    }
    for ((counter, substrate), c) in &cur_work {
        if !seen.contains(&(counter.clone(), substrate.clone())) {
            rows.push(DiffRow {
                kind: "work",
                key: format!("{counter} on {substrate}"),
                base: None,
                current: Some(*c),
                gated: false,
                regressed: false,
            });
        }
    }

    // Informational blocks.
    let flatten = |rows: Vec<(String, Vec<(String, f64)>)>| -> Vec<(String, f64)> {
        rows.into_iter()
            .flat_map(|(path, fields)| {
                fields
                    .into_iter()
                    .map(move |(k, v)| (format!("{path}.{k}"), v))
            })
            .collect()
    };
    align(
        "phase",
        flatten(phase_rows(base)),
        flatten(phase_rows(current)),
        &mut rows,
    );
    align("hist", hist_rows(base), hist_rows(current), &mut rows);
    align(
        "counter",
        counter_rows(base),
        counter_rows(current),
        &mut rows,
    );
    align("mem", mem_rows(base), mem_rows(current), &mut rows);

    DiffReport {
        rows,
        threshold_pct,
    }
}

/// Render the diff as the table the CI log shows. Gated rows print
/// `ok`/`REGRESSED`/`MISSING`; informational rows print their delta.
pub fn render(report: &DiffReport) -> String {
    let mut out = String::new();
    let fmt_v = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |n| format!("{n:.0}"));
    for r in &report.rows {
        let status = if r.regressed {
            if r.current.is_none() {
                "MISSING"
            } else {
                "REGRESSED"
            }
        } else if r.gated {
            "ok"
        } else {
            "info"
        };
        let delta = r
            .delta_pct()
            .map_or_else(String::new, |d| format!(" ({d:+.1}%)"));
        out.push_str(&format!(
            "{status:>9}  [{}] {}: {} -> {}{delta}\n",
            r.kind,
            r.key,
            fmt_v(r.base),
            fmt_v(r.current),
        ));
    }
    let gated = report.rows.iter().filter(|r| r.gated).count();
    let failed = report.rows.iter().filter(|r| r.regressed).count();
    out.push_str(&format!(
        "{gated} gated row(s) at +{:.0}% threshold, {failed} regression(s)\n",
        report.threshold_pct
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_doc(evals: u64, include_cone: bool) -> Value {
        let mut work = vec![Value::obj([
            ("counter", "atpg.gate_evals".into()),
            ("substrate", "b12_die0".into()),
            ("reference", 1000u64.into()),
            ("optimized", evals.into()),
            ("reduction", 0.5.into()),
        ])];
        if include_cone {
            work.push(Value::obj([
                ("counter", "graph.cone_word_ops".into()),
                ("substrate", "b12_die0".into()),
                ("reference", 500u64.into()),
                ("optimized", 100u64.into()),
                ("reduction", 0.8.into()),
            ]));
        }
        work.push(Value::obj([
            ("counter", "probe.cache_hits".into()),
            ("substrate", "b12_die0".into()),
            ("reference", 0u64.into()),
            ("optimized", 40u64.into()),
            ("reduction", 0.0.into()),
        ]));
        Value::obj([
            ("experiment", "perf".into()),
            ("work", Value::Arr(work)),
            (
                "phases",
                Value::Arr(vec![Value::obj([
                    ("path", "flow".into()),
                    ("count", 2u64.into()),
                    ("ms", 12.5.into()),
                    ("p50_ns", 1000u64.into()),
                ])]),
            ),
        ])
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let base = bench_doc(400, true);
        let report = diff(&base, &bench_doc(400, true), 20.0);
        assert!(!report.regressed());
        assert!(report.rows.iter().any(|r| r.gated));
        let rendered = render(&report);
        assert!(rendered.contains("0 regression(s)"), "{rendered}");
    }

    #[test]
    fn gated_growth_beyond_threshold_regresses() {
        let base = bench_doc(400, true);
        // +25% > the 20% threshold.
        let report = diff(&base, &bench_doc(500, true), 20.0);
        assert!(report.regressed());
        let row = report
            .rows
            .iter()
            .find(|r| r.key.contains("atpg.gate_evals"))
            .unwrap();
        assert!(row.regressed);
        assert!((row.delta_pct().unwrap() - 25.0).abs() < 1e-9);
        // The same growth passes a looser gate.
        assert!(!diff(&base, &bench_doc(500, true), 30.0).regressed());
    }

    #[test]
    fn improvement_passes_and_reports_negative_delta() {
        let base = bench_doc(400, true);
        let report = diff(&base, &bench_doc(300, true), 20.0);
        assert!(!report.regressed());
        let row = report
            .rows
            .iter()
            .find(|r| r.key.contains("atpg.gate_evals"))
            .unwrap();
        assert!((row.delta_pct().unwrap() + 25.0).abs() < 1e-9);
    }

    #[test]
    fn missing_gated_counter_regresses_missing_info_row_does_not() {
        let base = bench_doc(400, true);
        // Current report lost the cone-word-ops measurement entirely.
        let report = diff(&base, &bench_doc(400, false), 20.0);
        assert!(report.regressed());
        let row = report
            .rows
            .iter()
            .find(|r| r.key.contains("graph.cone_word_ops"))
            .unwrap();
        assert!(row.regressed && row.current.is_none());
        assert!(render(&report).contains("MISSING"));

        // An ungated (cache) row disappearing is informational only.
        let mut no_cache = bench_doc(400, true);
        if let Value::Obj(map) = &mut no_cache {
            if let Some(Value::Arr(work)) = map.get_mut("work") {
                work.retain(|w| w.get("counter").unwrap().as_str() != Some("probe.cache_hits"));
            }
        }
        assert!(!diff(&base, &no_cache, 20.0).regressed());
    }

    #[test]
    fn floor_gated_shrink_regresses_but_growth_does_not() {
        let doc = |pruned: u64| {
            Value::obj([
                ("experiment", "perf".into()),
                (
                    "work",
                    Value::Arr(vec![Value::obj([
                        ("counter", "atpg.faults_pruned".into()),
                        ("substrate", "b12_die0".into()),
                        ("reference", 0u64.into()),
                        ("optimized", pruned.into()),
                        ("reduction", 0.0.into()),
                    ])]),
                ),
            ])
        };
        let base = doc(100);
        // -25% < the -20% floor: the pruning went blind.
        let report = diff(&base, &doc(75), 20.0);
        assert!(report.regressed());
        let row = report
            .rows
            .iter()
            .find(|r| r.key.contains("atpg.faults_pruned"))
            .unwrap();
        assert!(row.gated && row.regressed);
        // Pruning *more* is an improvement, not a regression.
        assert!(!diff(&base, &doc(150), 20.0).regressed());
        // A small shrink within the threshold passes.
        assert!(!diff(&base, &doc(90), 20.0).regressed());
        // Losing the measurement entirely regresses.
        let empty = Value::obj([("experiment", "perf".into()), ("work", Value::Arr(vec![]))]);
        assert!(diff(&base, &empty, 20.0).regressed());
    }

    #[test]
    fn cache_rows_and_phases_stay_informational() {
        let base = bench_doc(400, true);
        let mut worse_cache = bench_doc(400, true);
        if let Value::Obj(map) = &mut worse_cache {
            if let Some(Value::Arr(work)) = map.get_mut("work") {
                for w in work.iter_mut() {
                    if w.get("counter").unwrap().as_str() == Some("probe.cache_hits") {
                        if let Value::Obj(row) = w {
                            row.insert("optimized".to_string(), 1u64.into());
                        }
                    }
                }
            }
        }
        assert!(!diff(&base, &worse_cache, 20.0).regressed());
    }

    #[test]
    fn run_report_counters_and_hists_align() {
        let run = |n: u64| {
            Value::obj([
                ("experiment", "t".into()),
                (
                    "sections",
                    Value::Arr(vec![Value::obj([(
                        "counters",
                        Value::obj([("graph.nodes", n.into())]),
                    )])]),
                ),
                (
                    "hists",
                    Value::obj([(
                        "flow",
                        Value::obj([
                            ("count", 2u64.into()),
                            ("p50", 100u64.into()),
                            ("p95", 200u64.into()),
                            ("p99", 200u64.into()),
                        ]),
                    )]),
                ),
            ])
        };
        let report = diff(&run(10), &run(12), 20.0);
        assert!(!report.regressed());
        let counter = report
            .rows
            .iter()
            .find(|r| r.kind == "counter" && r.key == "graph.nodes")
            .unwrap();
        assert_eq!(counter.base, Some(10.0));
        assert_eq!(counter.current, Some(12.0));
        assert!(report
            .rows
            .iter()
            .any(|r| r.kind == "hist" && r.key == "flow.p50"));
    }
}

//! The experiment-driver boundary: begin the report, run the body under
//! `catch_unwind`, always finish the report, and map what happened to a
//! process exit code.
//!
//! Exit-code contract (also relied on by CI and the chaos suite):
//!
//! | code | meaning                                                   |
//! |------|-----------------------------------------------------------|
//! | 0    | full success                                              |
//! | 1    | lint gate failed ([`FlowError::LintGate`], `bin/lint`)    |
//! | 2    | bad circuit selection (`PREBOND3D_CIRCUITS` matches none) |
//! | 3    | partial failure: some units failed, the rest completed    |
//! | 4    | catastrophic: a typed fatal error or an escaped panic     |
//!
//! The body returns `Result<(), FlowError>` so a typed error maps to its
//! exit code directly ([`FlowError::exit_code`]) — no string matching. A
//! panic that escapes every unit boundary is still caught here, recorded
//! in the run report, and turned into code 4, so even a catastrophic run
//! leaves a machine-readable trace of what it managed to do.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use prebond3d_wcm::flow::FlowError;

use crate::report;

/// Some units failed; the rest of the sweep completed and was reported.
pub const EXIT_PARTIAL_FAILURE: u8 = 3;
/// A fatal error or escaped panic ended the run early.
pub const EXIT_FATAL: u8 = 4;

/// Run one experiment end to end: `begin(experiment)`, the body, then
/// `finish` — unconditionally, so the run report (with its failure,
/// degradation and chaos records) is written even when the body dies.
pub fn run(experiment: &str, body: impl FnOnce() -> Result<(), FlowError>) -> ExitCode {
    report::begin(experiment);
    let outcome = catch_unwind(AssertUnwindSafe(body));
    match &outcome {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            eprintln!("{experiment}: {e}");
            report::record_failure(experiment, &e.to_string());
        }
        Err(p) => {
            let msg = format!("escaped panic: {}", report::panic_message(p.as_ref()));
            eprintln!("{experiment}: {msg}");
            report::record_failure(experiment, &msg);
        }
    }
    let summary = report::finish_summary();
    match outcome {
        Err(_) => ExitCode::from(EXIT_FATAL),
        Ok(Err(e)) => ExitCode::from(u8::try_from(e.exit_code()).unwrap_or(EXIT_FATAL)),
        Ok(Ok(())) if summary.failures > 0 => ExitCode::from(EXIT_PARTIAL_FAILURE),
        Ok(Ok(())) => ExitCode::SUCCESS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The report collector is process-global; serialize with a local lock
    // (the report module's tests have their own).
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_dir(tag: &str, f: impl FnOnce()) {
        let dir =
            std::env::temp_dir().join(format!("prebond3d_driver_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("PREBOND3D_REPORT_DIR", &dir);
        f();
        std::env::remove_var("PREBOND3D_REPORT_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_body_exits_zero() {
        let _l = LOCK.lock().unwrap();
        with_dir("ok", || {
            assert_eq!(run("driver_ok", || Ok(())), ExitCode::SUCCESS);
        });
    }

    #[test]
    fn failed_units_map_to_the_partial_code() {
        let _l = LOCK.lock().unwrap();
        with_dir("partial", || {
            let code = run("driver_partial", || {
                report::record_failure("die0", "synthetic unit failure");
                Ok(())
            });
            assert_eq!(code, ExitCode::from(EXIT_PARTIAL_FAILURE));
        });
    }

    #[test]
    fn typed_errors_map_to_their_exit_code_and_escapes_to_fatal() {
        let _l = LOCK.lock().unwrap();
        with_dir("typed", || {
            let code = run("driver_lintgate", || {
                Err(FlowError::LintGate {
                    label: "x".to_string(),
                    report: String::new(),
                })
            });
            assert_eq!(code, ExitCode::from(1));
            let code = run("driver_escape", || panic!("boom all the way out"));
            assert_eq!(code, ExitCode::from(EXIT_FATAL));
        });
    }
}

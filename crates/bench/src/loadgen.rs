//! The serving load generator behind `prebond3d-loadgen`.
//!
//! Replays a **seeded multi-client job mix** against a `prebond3d-serve`
//! daemon and writes `results/BENCH_serve.json` — the serving twin of
//! `BENCH_perf.json`, obs-diff-gated in CI (`serve.cache_misses` is in
//! [`crate::obsdiff::GATED_COUNTERS`]).
//!
//! The run has two deliberate phases:
//!
//! 1. **Priming** — one sequential client submits one job per distinct
//!    substrate in the mix. Against a cold daemon this produces exactly
//!    one `serve.cache_misses` per substrate (all methods share a
//!    substrate's warm entry), making the gated counter deterministic
//!    and race-free. The first priming job is the *measured-probe* job
//!    (`probe: atpg` on the smallest substrate): it pays the full ATPG
//!    pricing of every overlapping pair, which is what fills the probe
//!    memo the warm cache keeps alive. Its server-side duration is the
//!    *cold* latency sample.
//! 2. **Mix** — `clients` concurrent connections each replay
//!    `jobs_per_client` jobs drawn from the seeded mix. Every lookup
//!    hits the warm cache. Mix jobs with the **same spec** as the cold
//!    measured-probe job (each client's first job is one, by
//!    construction) feed the *warm* histogram — a matched comparison,
//!    where the only difference is the cache state. Latencies are the
//!    server-side per-job `ms` from the `done` frame, so mix queueing
//!    does not pollute the comparison.
//! 3. **Saturation sweep** — for each client count in
//!    [`SWEEP_CLIENTS`], a burst of warm structural jobs measures
//!    end-to-end throughput; the per-count `jobs_per_sec` rows land in
//!    the report's `saturation` array, showing where the daemon's
//!    worker pool saturates. Throughput is wall-clock and therefore
//!    zeroed under `PREBOND3D_STABLE_MS` (the row structure and job
//!    counts stay deterministic).
//!
//! The loadgen asserts the serving contract, not just liveness: every
//! job must come back code 0, the hit delta must be positive, and the
//! warm p50 must beat the cold p50 (a warm measured-probe job skips
//! generate+place *and* re-pricing the pairs its substrate's memo
//! already holds). It therefore **requires a cold daemon** — point it
//! at a warmed-up one and the cold histogram is empty, which is an
//! error, not a silently-vacuous pass.
//!
//! Latency histogram *values* are wall-clock and zeroed under
//! `PREBOND3D_STABLE_MS` like every other clock in the reports; the
//! sample **counts** are deterministic (`#substrates` cold,
//! `clients * jobs_per_client` warm) and survive, so obs-diff can still
//! align them.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use prebond3d_obs as obs;
use prebond3d_obs::json::Value;
use prebond3d_pool as pool;
use prebond3d_resilience as resil;
use prebond3d_rng::StdRng;
use prebond3d_serve::{Bind, Server, ServerConfig};

use crate::report;

/// The fixed substrate set of the mix: small dies so a full replay stays
/// in CI seconds, two circuits so eviction keying is exercised across
/// generation inputs.
const SUBSTRATES: [(&str, usize); 3] = [("b11", 0), ("b11", 1), ("b12", 0)];
/// Methods sampled by the mix; all four share one substrate entry.
const METHODS: [&str; 3] = ["ours", "agrawal", "li"];

/// Loadgen configuration (see the binary's `--help`).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Target an external daemon (`host:port`); `None` spawns one
    /// in-process.
    pub addr: Option<String>,
    /// Concurrent mix connections.
    pub clients: usize,
    /// Jobs each mix client replays.
    pub jobs_per_client: usize,
    /// Mix seed; same seed, same job sequence.
    pub seed: u64,
    /// Send the `shutdown` op when done (always done for an in-process
    /// daemon; opt-in for an external one).
    pub shutdown: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: None,
            clients: 3,
            jobs_per_client: 6,
            seed: 0x10AD_5EED,
            shutdown: false,
        }
    }
}

/// What [`run`] hands the binary for its summary line.
#[derive(Debug)]
pub struct LoadgenSummary {
    /// Jobs replayed (priming + mix).
    pub jobs: u64,
    /// `serve.cache_hits` delta over the run.
    pub hits: u64,
    /// `serve.cache_misses` delta over the run.
    pub misses: u64,
    /// Cold (miss) p50 latency, milliseconds.
    pub cold_p50_ms: f64,
    /// Warm (hit) p50 latency, milliseconds.
    pub warm_p50_ms: f64,
    /// Where `BENCH_serve.json` was written.
    pub report_path: std::path::PathBuf,
}

/// One client connection speaking the newline-delimited JSON protocol.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// One completed job as observed from the client side.
struct JobResult {
    code: u64,
    cache: String,
    /// Server-side job duration (the `done` frame's `ms`), nanoseconds.
    server_ns: u64,
    /// Did this job run the measured-probe spec the histograms compare?
    measured: bool,
    /// `(path, count, ms)` rows from the job's `phase` frames.
    phases: Vec<(String, u64, f64)>,
}

impl Client {
    fn connect(addr: &str) -> Result<Client, String> {
        let writer = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let reader = writer
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?;
        Ok(Client {
            writer,
            reader: BufReader::new(reader),
        })
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("flush: {e}"))
    }

    fn read_frame(&mut self) -> Result<Value, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection".into());
        }
        obs::json::parse(line.trim())
            .map_err(|e| format!("unparsable frame `{}`: {e}", line.trim()))
    }

    /// One request, one response frame.
    fn request(&mut self, line: &str) -> Result<Value, String> {
        self.send(line)?;
        self.read_frame()
    }

    /// Submit one job and consume its frame stream through `done`.
    /// `measured` tags the job for the cold/warm latency histograms.
    fn submit(&mut self, line: &str, measured: bool) -> Result<JobResult, String> {
        self.send(line)?;
        let first = self.read_frame()?;
        if first.get("ev").and_then(Value::as_str) != Some("accepted") {
            return Err(format!("expected accepted, got {first}"));
        }
        let mut phases = Vec::new();
        loop {
            let frame = self.read_frame()?;
            match frame.get("ev").and_then(Value::as_str) {
                Some("phase") => {
                    if let (Some(path), Some(count), Some(ms)) = (
                        frame.get("path").and_then(Value::as_str),
                        frame.get("count").and_then(Value::as_u64),
                        frame.get("ms").and_then(Value::as_f64),
                    ) {
                        phases.push((path.to_string(), count, ms));
                    }
                }
                Some("done") => {
                    let server_ms = frame.get("ms").and_then(Value::as_f64).unwrap_or(0.0);
                    return Ok(JobResult {
                        code: frame.get("code").and_then(Value::as_u64).unwrap_or(4),
                        cache: frame
                            .get("cache")
                            .and_then(Value::as_str)
                            .unwrap_or("?")
                            .to_string(),
                        server_ns: (server_ms.max(0.0) * 1.0e6) as u64,
                        measured,
                        phases,
                    });
                }
                _ => return Err(format!("unexpected frame {frame}")),
            }
        }
    }
}

/// The substrate/method/probe of the measured-probe jobs the cold/warm
/// histograms compare: the ATPG probe on the smallest substrate, so the
/// cold job's full pair pricing stays in CI seconds.
const MEASURED: (usize, usize, &str) = (0, 0, "atpg");

/// Client counts exercised by the saturation sweep (phase 3).
const SWEEP_CLIENTS: [usize; 4] = [1, 2, 4, 8];
/// Warm structural jobs each sweep client replays per round.
const SWEEP_JOBS: usize = 3;

/// The submit line for one mix draw.
fn job_line(id: &str, substrate: usize, method: usize, probe: &str) -> String {
    let (circuit, die) = SUBSTRATES[substrate];
    format!(
        r#"{{"op":"submit","id":"{id}","circuit":"{circuit}","die":{die},"method":"{}","probe":"{probe}"}}"#,
        METHODS[method]
    )
}

/// Numeric field of a stats sub-block, defaulting to 0.
fn stat(frame: &Value, block: &str, key: &str) -> u64 {
    frame
        .get(block)
        .and_then(|b| b.get(key))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

/// Run the load, write `BENCH_serve.json`, and check the serving
/// contract.
///
/// # Errors
///
/// Connection/protocol failures, a non-zero job code, a hit delta of
/// zero, an empty cold histogram (the daemon was not cold), or a warm
/// p50 that does not beat the cold p50.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenSummary, String> {
    let started = Instant::now();
    // An in-process daemon when no --addr: fixed worker count so the mix
    // concurrency (and thus queueing) is environment-independent.
    let server = match &config.addr {
        Some(_) => None,
        None => Some(
            Server::start(ServerConfig {
                bind: Bind::Tcp("127.0.0.1:0".to_string()),
                workers: 4,
                cache_bytes: prebond3d_serve::cache::DEFAULT_BUDGET_BYTES,
            })
            .map_err(|e| format!("spawn daemon: {e}"))?,
        ),
    };
    let addr = match (&config.addr, &server) {
        (Some(a), _) => a.clone(),
        (None, Some(s)) => s.addr().expect("tcp daemon has an addr").to_string(),
        (None, None) => unreachable!(),
    };

    let mut control = Client::connect(&addr)?;
    let before = control.request(r#"{"op":"stats"}"#)?;

    // --- Phase 1: sequential priming, one job per distinct substrate ---
    let mut cold = obs::hist::Hist::new();
    let mut warm = obs::hist::Hist::new();
    let mut phase_agg: std::collections::BTreeMap<String, (u64, f64)> =
        std::collections::BTreeMap::new();
    let mut phase_hists: std::collections::BTreeMap<String, obs::hist::Hist> =
        std::collections::BTreeMap::new();
    let mut bad_jobs: Vec<String> = Vec::new();
    let mut fold = |r: &JobResult| {
        if r.measured {
            if r.cache == "hit" {
                warm.record(r.server_ns);
            } else {
                cold.record(r.server_ns);
            }
        }
        for (path, count, ms) in &r.phases {
            let e = phase_agg.entry(path.clone()).or_insert((0, 0.0));
            e.0 += count;
            e.1 += ms;
            phase_hists
                .entry(path.clone())
                .or_default()
                .record((ms.max(0.0) * 1.0e6) as u64);
        }
    };
    // The measured-probe job goes first while its substrate is still
    // cold, then one cheap structural job per remaining substrate.
    let (m_sub, m_method, m_probe) = MEASURED;
    let prime: Vec<(String, bool)> =
        std::iter::once((job_line("prime-measured", m_sub, m_method, m_probe), true))
            .chain(
                SUBSTRATES
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != m_sub)
                    .map(|(i, _)| (job_line(&format!("prime-{i}"), i, 0, "structural"), false)),
            )
            .collect();
    for (line, measured) in &prime {
        let r = control.submit(line, *measured)?;
        if r.code != 0 {
            bad_jobs.push(format!("priming job exited {}", r.code));
        }
        fold(&r);
    }

    // --- Phase 2: seeded multi-client mix -------------------------------
    let results: Vec<Result<Vec<JobResult>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|c| {
                let addr = addr.clone();
                let jobs = config.jobs_per_client;
                let seed = config.seed;
                scope.spawn(move || -> Result<Vec<JobResult>, String> {
                    let mut rng = StdRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9E37));
                    let mut client = Client::connect(&addr)?;
                    let mut out = Vec::with_capacity(jobs);
                    let (m_sub, m_method, m_probe) = MEASURED;
                    for j in 0..jobs {
                        // Each client's first job replays the measured
                        // spec warm, guaranteeing warm samples; the rest
                        // draw from the seeded mix (the measured spec
                        // can recur — still a matched warm sample).
                        let (substrate, method, probe) = if j == 0 {
                            (m_sub, m_method, m_probe)
                        } else {
                            let substrate = rng.gen_range(0..SUBSTRATES.len());
                            let method = rng.gen_range(0..METHODS.len());
                            let probe = if substrate == m_sub && rng.gen_bool(0.4) {
                                m_probe
                            } else {
                                "structural"
                            };
                            (substrate, method, probe)
                        };
                        let measured = (substrate, method, probe) == (m_sub, m_method, m_probe);
                        let line = job_line(&format!("c{c}-j{j}"), substrate, method, probe);
                        out.push(client.submit(&line, measured)?);
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    for r in results {
        for job in r? {
            if job.code != 0 {
                bad_jobs.push(format!("mix job exited {}", job.code));
            }
            fold(&job);
        }
    }

    // --- Phase 3: saturation sweep --------------------------------------
    // Bursts of warm structural jobs at increasing client counts; the
    // jobs/sec row per count shows where the worker pool saturates.
    // Everything here is a cache hit, so throughput measures dispatch +
    // queueing, not flow compute.
    let mut saturation: Vec<Value> = Vec::new();
    let mut sweep_total = 0u64;
    for clients in SWEEP_CLIENTS {
        let round_start = Instant::now();
        let round: Vec<Result<Vec<JobResult>, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let addr = addr.clone();
                    scope.spawn(move || -> Result<Vec<JobResult>, String> {
                        let mut client = Client::connect(&addr)?;
                        let mut out = Vec::with_capacity(SWEEP_JOBS);
                        for j in 0..SWEEP_JOBS {
                            let substrate = (c + j) % SUBSTRATES.len();
                            let line = job_line(
                                &format!("s{clients}-c{c}-j{j}"),
                                substrate,
                                0,
                                "structural",
                            );
                            out.push(client.submit(&line, false)?);
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err("sweep client panicked".into()))
                })
                .collect()
        });
        let elapsed = round_start.elapsed().as_secs_f64();
        let mut done = 0u64;
        for r in round {
            for job in r? {
                if job.code != 0 {
                    bad_jobs.push(format!("sweep job exited {}", job.code));
                }
                done += 1;
                fold(&job);
            }
        }
        sweep_total += done;
        let jobs_per_sec = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        saturation.push(Value::obj([
            ("clients", clients.into()),
            ("jobs", done.into()),
            ("elapsed_ms", (elapsed * 1.0e3).into()),
            ("jobs_per_sec", jobs_per_sec.into()),
        ]));
    }

    let after = control.request(r#"{"op":"stats"}"#)?;
    if config.shutdown || server.is_some() {
        let bye = control.request(r#"{"op":"shutdown"}"#)?;
        if bye.get("ev").and_then(Value::as_str) != Some("bye") {
            return Err(format!("expected bye, got {bye}"));
        }
    }
    if let Some(server) = server {
        server.join();
    }

    // --- Deltas, report, contract ---------------------------------------
    let delta = |block: &str, key: &str| stat(&after, block, key) - stat(&before, block, key);
    let total_jobs =
        prime.len() as u64 + (config.clients * config.jobs_per_client) as u64 + sweep_total;
    let hits = delta("cache", "hits");
    let misses = delta("cache", "misses");
    let evictions = delta("cache", "evictions");

    let work_row = |counter: &str, reference: u64, optimized: u64| {
        let reduction = if reference > 0 {
            1.0 - optimized as f64 / reference as f64
        } else {
            0.0
        };
        Value::obj([
            ("counter", counter.into()),
            ("substrate", "job mix".into()),
            ("reference", reference.into()),
            ("optimized", optimized.into()),
            ("reduction", reduction.into()),
        ])
    };
    let phases: Vec<Value> = phase_agg
        .iter()
        .map(|(path, &(count, ms))| {
            let h = phase_hists.get(path);
            Value::obj([
                ("path", path.as_str().into()),
                ("count", count.into()),
                ("ms", ms.into()),
                ("p50_ns", h.map_or(0, |h| h.quantile(0.50)).into()),
                ("p95_ns", h.map_or(0, |h| h.quantile(0.95)).into()),
                ("p99_ns", h.map_or(0, |h| h.quantile(0.99)).into()),
                ("max_ns", h.map_or(0, obs::hist::Hist::max).into()),
            ])
        })
        .collect();
    let mut mem_fields: Vec<(&'static str, Value)> = Vec::new();
    if let Some(kb) = obs::mem::rss_now_kb() {
        mem_fields.push(("rss_now_kb", kb.into()));
    }
    if let Some(kb) = obs::mem::rss_peak_kb() {
        mem_fields.push(("rss_peak_kb", kb.into()));
    }
    let mut doc = Value::obj([
        ("experiment", "serve".into()),
        ("threads", pool::threads().into()),
        (
            "elapsed_ms",
            (started.elapsed().as_secs_f64() * 1.0e3).into(),
        ),
        ("clients", config.clients.into()),
        ("jobs_per_client", config.jobs_per_client.into()),
        ("seed", config.seed.into()),
        ("phases", Value::Arr(phases)),
        ("saturation", Value::Arr(saturation)),
        (
            "hists",
            Value::obj([
                ("serve.latency_cold_ns", cold.to_json()),
                ("serve.latency_warm_ns", warm.to_json()),
            ]),
        ),
        (
            "jobs",
            Value::obj([
                ("submitted", delta("jobs", "submitted").into()),
                ("done", delta("jobs", "done").into()),
                ("failed", delta("jobs", "failed").into()),
                ("protocol_errors", delta("jobs", "protocol_errors").into()),
            ]),
        ),
        (
            "cache",
            Value::obj([
                ("hits", hits.into()),
                ("misses", misses.into()),
                ("evictions", evictions.into()),
                ("entries", stat(&after, "cache", "entries").into()),
                ("budget", stat(&after, "cache", "budget").into()),
            ]),
        ),
        ("mem", Value::obj(mem_fields)),
        (
            "work",
            Value::Arr(vec![
                work_row("serve.cache_misses", total_jobs, misses),
                work_row("serve.cache_hits", 0, hits),
                work_row("serve.cache_evictions", 0, evictions),
            ]),
        ),
    ]);
    // The contract checks read the *measured* values; the stable-ms
    // normalization only applies to what lands on disk.
    let cold_p50_ms = cold.quantile(0.50) as f64 / 1.0e6;
    let warm_p50_ms = warm.quantile(0.50) as f64 / 1.0e6;
    if resil::stable_ms() {
        report::zero_ms(&mut doc);
    }
    let report_path = report::report_dir().join("BENCH_serve.json");
    resil::atomic_write(&report_path, &format!("{doc}\n")).map_err(|e| e.to_string())?;

    if !bad_jobs.is_empty() {
        return Err(format!(
            "{} job(s) failed: {}",
            bad_jobs.len(),
            bad_jobs.join("; ")
        ));
    }
    if delta("jobs", "submitted") != total_jobs
        || delta("jobs", "done") + delta("jobs", "failed") != total_jobs
    {
        return Err(format!(
            "job accounting off: submitted {} done {} failed {} expected {total_jobs}",
            delta("jobs", "submitted"),
            delta("jobs", "done"),
            delta("jobs", "failed"),
        ));
    }
    if hits == 0 {
        return Err("serve.cache_hits did not grow — the warm cache never hit".into());
    }
    if cold.is_empty() {
        return Err(
            "no cold (miss) jobs observed — the daemon was already warm; \
             restart it for a cold measurement"
                .into(),
        );
    }
    if warm_p50_ms >= cold_p50_ms {
        return Err(format!(
            "warm p50 {warm_p50_ms:.2} ms does not beat cold p50 {cold_p50_ms:.2} ms"
        ));
    }
    Ok(LoadgenSummary {
        jobs: total_jobs,
        hits,
        misses,
        cold_p50_ms,
        warm_p50_ms,
        report_path,
    })
}

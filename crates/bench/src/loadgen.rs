//! The serving load generator behind `prebond3d-loadgen`.
//!
//! Replays a **seeded multi-client job mix** against a `prebond3d-serve`
//! daemon and writes `results/BENCH_serve.json` — the serving twin of
//! `BENCH_perf.json`, obs-diff-gated in CI (`serve.cache_misses` is in
//! [`crate::obsdiff::GATED_COUNTERS`]).
//!
//! The run has two deliberate phases:
//!
//! 1. **Priming** — one sequential client submits one job per distinct
//!    substrate in the mix. Against a cold daemon this produces exactly
//!    one `serve.cache_misses` per substrate (all methods share a
//!    substrate's warm entry), making the gated counter deterministic
//!    and race-free. The first priming job is the *measured-probe* job
//!    (`probe: atpg` on the smallest substrate): it pays the full ATPG
//!    pricing of every overlapping pair, which is what fills the probe
//!    memo the warm cache keeps alive. Its server-side duration is the
//!    *cold* latency sample.
//! 2. **Mix** — `clients` concurrent connections each replay
//!    `jobs_per_client` jobs drawn from the seeded mix. Every lookup
//!    hits the warm cache. Mix jobs with the **same spec** as the cold
//!    measured-probe job (each client's first job is one, by
//!    construction) feed the *warm* histogram — a matched comparison,
//!    where the only difference is the cache state. Latencies are the
//!    server-side per-job `ms` from the `done` frame, so mix queueing
//!    does not pollute the comparison.
//! 3. **Saturation sweep** — for each client count in
//!    [`SWEEP_CLIENTS`], a burst of warm structural jobs measures
//!    end-to-end throughput; the per-count `jobs_per_sec` rows land in
//!    the report's `saturation` array, showing where the daemon's
//!    worker pool saturates. Throughput is wall-clock and therefore
//!    zeroed under `PREBOND3D_STABLE_MS` (the row structure and job
//!    counts stay deterministic).
//! 4. **Overload & backpressure** — on dedicated in-process daemons: a
//!    zero-depth admission gate sheds three submits deterministically
//!    (`serve.shed = 3`, floor-gated by obs-diff), then a held depth-1
//!    queue guarantees three concurrent clients are shed and drain
//!    through client-side `retry_after`-honoring backoff after a
//!    `resume`. See [`overload_phase`].
//! 5. **Crash recovery** — a journaled in-process daemon is aborted
//!    with three jobs journaled into a held queue; the restart must
//!    replay exactly those three orphans (`serve.recovered = 3`,
//!    floor-gated) with byte-identical `report` sub-objects and dedup
//!    exact resubmits. See [`recovery_phase`].
//! 6. **Kill-and-recover** (opt-in via `--daemon-bin`) — the same
//!    contract against the real daemon binary: four jobs journaled into
//!    a `--paused` queue, SIGKILL, restart, all four drain exactly
//!    once. See [`kill_recover_phase`].
//!
//! The loadgen asserts the serving contract, not just liveness: every
//! job must come back code 0, the hit delta must be positive, and the
//! warm p50 must beat the cold p50 (a warm measured-probe job skips
//! generate+place *and* re-pricing the pairs its substrate's memo
//! already holds). It therefore **requires a cold daemon** — point it
//! at a warmed-up one and the cold histogram is empty, which is an
//! error, not a silently-vacuous pass.
//!
//! Latency histogram *values* are wall-clock and zeroed under
//! `PREBOND3D_STABLE_MS` like every other clock in the reports; the
//! sample **counts** are deterministic (`#substrates` cold,
//! `clients * jobs_per_client` warm) and survive, so obs-diff can still
//! align them.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use prebond3d_obs as obs;
use prebond3d_obs::json::Value;
use prebond3d_pool as pool;
use prebond3d_resilience as resil;
use prebond3d_rng::StdRng;
use prebond3d_serve::{Bind, Server, ServerConfig};

use crate::report;

/// The fixed substrate set of the mix: small dies so a full replay stays
/// in CI seconds, two circuits so eviction keying is exercised across
/// generation inputs.
const SUBSTRATES: [(&str, usize); 3] = [("b11", 0), ("b11", 1), ("b12", 0)];
/// Methods sampled by the mix; all four share one substrate entry.
const METHODS: [&str; 3] = ["ours", "agrawal", "li"];

/// Loadgen configuration (see the binary's `--help`).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Target an external daemon (`host:port`); `None` spawns one
    /// in-process.
    pub addr: Option<String>,
    /// Concurrent mix connections.
    pub clients: usize,
    /// Jobs each mix client replays.
    pub jobs_per_client: usize,
    /// Mix seed; same seed, same job sequence.
    pub seed: u64,
    /// Send the `shutdown` op when done (always done for an in-process
    /// daemon; opt-in for an external one).
    pub shutdown: bool,
    /// Path to a `prebond3d-serve` binary for the external
    /// kill-and-recover phase: the loadgen spawns it with `--journal`,
    /// SIGKILLs it mid-mix, restarts it, and asserts every accepted job
    /// drains exactly once. `None` skips the external phase (the
    /// in-process crash-recovery phase always runs).
    pub daemon_bin: Option<std::path::PathBuf>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: None,
            clients: 3,
            jobs_per_client: 6,
            seed: 0x10AD_5EED,
            shutdown: false,
            daemon_bin: None,
        }
    }
}

/// What [`run`] hands the binary for its summary line.
#[derive(Debug)]
pub struct LoadgenSummary {
    /// Jobs replayed (priming + mix).
    pub jobs: u64,
    /// `serve.cache_hits` delta over the run.
    pub hits: u64,
    /// `serve.cache_misses` delta over the run.
    pub misses: u64,
    /// Cold (miss) p50 latency, milliseconds.
    pub cold_p50_ms: f64,
    /// Warm (hit) p50 latency, milliseconds.
    pub warm_p50_ms: f64,
    /// Deterministic sheds from the overload phase (`serve.shed`).
    pub shed: u64,
    /// Journal orphans replayed by the recovery phase
    /// (`serve.recovered`).
    pub recovered: u64,
    /// Jobs recovered by the external kill-and-recover phase (0 when
    /// `--daemon-bin` was not given).
    pub kill_recovered: u64,
    /// Where `BENCH_serve.json` was written.
    pub report_path: std::path::PathBuf,
}

/// One client connection speaking the newline-delimited JSON protocol.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// One completed job as observed from the client side.
struct JobResult {
    code: u64,
    cache: String,
    /// Server-side job duration (the `done` frame's `ms`), nanoseconds.
    server_ns: u64,
    /// Did this job run the measured-probe spec the histograms compare?
    measured: bool,
    /// `(path, count, ms)` rows from the job's `phase` frames.
    phases: Vec<(String, u64, f64)>,
    /// The idempotency key from the `accepted` frame (wire form).
    key: String,
    /// Was the `done` frame replayed from the journal (`"dedup":true`)?
    dedup: bool,
    /// The serialized `report` sub-object, for byte-identity checks.
    report: Option<String>,
}

/// What one submit attempt came back with.
enum Submitted {
    /// The job ran (or replayed) to its terminal frame.
    Done(JobResult),
    /// Admission shed the submit; back off at least this many ms.
    RetryAfter(u64),
}

/// Seeded exponential backoff with jitter: `25·2^min(attempt,6)` ms plus
/// a uniform jitter of up to the same again.
fn backoff_ms(attempt: u32, rng: &mut StdRng) -> u64 {
    let base = 25u64 << attempt.min(6);
    base + rng.gen_range(0..base)
}

impl Client {
    fn connect(addr: &str) -> Result<Client, String> {
        let writer = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let reader = writer
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?;
        Ok(Client {
            writer,
            reader: BufReader::new(reader),
        })
    }

    /// Connect with bounded seeded backoff + jitter. Absorbs the race of
    /// a daemon that is still binding (`--port-file` was written but the
    /// listener isn't up, or the harness started loadgen first).
    fn connect_retry(addr: &str, rng: &mut StdRng) -> Result<Client, String> {
        let mut last = String::new();
        for attempt in 0..10u32 {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => last = e,
            }
            std::thread::sleep(Duration::from_millis(backoff_ms(attempt, rng)));
        }
        Err(format!("giving up after 10 connect attempts: {last}"))
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("flush: {e}"))
    }

    fn read_frame(&mut self) -> Result<Value, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection".into());
        }
        obs::json::parse(line.trim())
            .map_err(|e| format!("unparsable frame `{}`: {e}", line.trim()))
    }

    /// One request, one response frame.
    fn request(&mut self, line: &str) -> Result<Value, String> {
        self.send(line)?;
        self.read_frame()
    }

    /// Submit one job; the response is either its frame stream through
    /// `done` or a single `retry_after` shed. `measured` tags the job
    /// for the cold/warm latency histograms.
    fn try_submit(&mut self, line: &str, measured: bool) -> Result<Submitted, String> {
        self.send(line)?;
        let first = self.read_frame()?;
        match first.get("ev").and_then(Value::as_str) {
            Some("accepted") => {}
            Some("retry_after") => {
                let ms = first
                    .get("retry_after_ms")
                    .and_then(Value::as_u64)
                    .unwrap_or(0);
                return Ok(Submitted::RetryAfter(ms));
            }
            _ => return Err(format!("expected accepted, got {first}")),
        }
        let key = first
            .get("key")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string();
        let mut phases = Vec::new();
        loop {
            let frame = self.read_frame()?;
            match frame.get("ev").and_then(Value::as_str) {
                Some("phase") => {
                    if let (Some(path), Some(count), Some(ms)) = (
                        frame.get("path").and_then(Value::as_str),
                        frame.get("count").and_then(Value::as_u64),
                        frame.get("ms").and_then(Value::as_f64),
                    ) {
                        phases.push((path.to_string(), count, ms));
                    }
                }
                Some("done") => {
                    let server_ms = frame.get("ms").and_then(Value::as_f64).unwrap_or(0.0);
                    return Ok(Submitted::Done(JobResult {
                        code: frame.get("code").and_then(Value::as_u64).unwrap_or(4),
                        cache: frame
                            .get("cache")
                            .and_then(Value::as_str)
                            .unwrap_or("?")
                            .to_string(),
                        server_ns: (server_ms.max(0.0) * 1.0e6) as u64,
                        measured,
                        phases,
                        key,
                        dedup: frame.get("dedup").and_then(Value::as_bool).unwrap_or(false),
                        report: frame.get("report").map(Value::to_string),
                    }));
                }
                _ => return Err(format!("unexpected frame {frame}")),
            }
        }
    }

    /// Submit expecting admission (the main phases run far below the
    /// queue limits): a `retry_after` here is a contract failure.
    fn submit(&mut self, line: &str, measured: bool) -> Result<JobResult, String> {
        match self.try_submit(line, measured)? {
            Submitted::Done(r) => Ok(r),
            Submitted::RetryAfter(ms) => {
                Err(format!("unexpected retry_after ({ms} ms) for `{line}`"))
            }
        }
    }

    /// Resilient submit: sheds are retried with seeded backoff + jitter
    /// (honoring the server's `retry_after_ms` floor) until the job is
    /// admitted and reaches `done`. Returns the result and how many
    /// `retry_after` frames were absorbed along the way. The submit line
    /// is identical on every attempt, so with a journaled daemon the
    /// idempotency key dedups any ambiguous retry to exactly-once.
    fn submit_retry(
        &mut self,
        line: &str,
        measured: bool,
        rng: &mut StdRng,
        max_attempts: u32,
    ) -> Result<(JobResult, u64), String> {
        let mut sheds = 0u64;
        for attempt in 0..max_attempts {
            match self.try_submit(line, measured)? {
                Submitted::Done(r) => return Ok((r, sheds)),
                Submitted::RetryAfter(server_ms) => {
                    sheds += 1;
                    let wait = server_ms.max(backoff_ms(attempt, rng));
                    std::thread::sleep(Duration::from_millis(wait.min(2_000)));
                }
            }
        }
        Err(format!("still shed after {max_attempts} attempts: `{line}`"))
    }
}

/// The substrate/method/probe of the measured-probe jobs the cold/warm
/// histograms compare: the ATPG probe on the smallest substrate, so the
/// cold job's full pair pricing stays in CI seconds.
const MEASURED: (usize, usize, &str) = (0, 0, "atpg");

/// Client counts exercised by the saturation sweep (phase 3).
const SWEEP_CLIENTS: [usize; 4] = [1, 2, 4, 8];
/// Warm structural jobs each sweep client replays per round.
const SWEEP_JOBS: usize = 3;

/// The submit line for one mix draw.
fn job_line(id: &str, substrate: usize, method: usize, probe: &str) -> String {
    let (circuit, die) = SUBSTRATES[substrate];
    format!(
        r#"{{"op":"submit","id":"{id}","circuit":"{circuit}","die":{die},"method":"{}","probe":"{probe}"}}"#,
        METHODS[method]
    )
}

/// Numeric field of a stats sub-block, defaulting to 0.
fn stat(frame: &Value, block: &str, key: &str) -> u64 {
    frame
        .get(block)
        .and_then(|b| b.get(key))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

/// Outcome of the overload phase.
struct OverloadOutcome {
    /// Sheds from the zero-depth admission server — exactly 3, every
    /// run; this is what the floor-gated `serve.shed` work row reports.
    shed_deterministic: u64,
    /// Total sheds across both overload servers (retries add more).
    shed_total: u64,
    /// `retry_after` frames clients absorbed and honored.
    retry_after_frames: u64,
}

/// Outcome of the in-process crash-recovery phase.
struct RecoveryOutcome {
    /// Journal orphans replayed after the abort — exactly 3, every run;
    /// the floor-gated `serve.recovered` work row.
    recovered: u64,
    /// Exact resubmits answered from the journal without re-running.
    deduped: u64,
    /// Unfinished journal entries left at the end (must be 0).
    journal_pending: u64,
    /// Terminal records held by the restarted daemon.
    journal_done: u64,
}

/// Poll the `status` op until `key` reaches `done` (the recovered
/// orphans run with no client attached), failing on `unknown` — a key we
/// were told was accepted can only be pending or done.
fn poll_status_done(
    client: &mut Client,
    key: &str,
    timeout: Duration,
) -> Result<Value, String> {
    let t0 = Instant::now();
    loop {
        let frame = client.request(&format!(r#"{{"op":"status","key":"{key}"}}"#))?;
        match frame.get("state").and_then(Value::as_str) {
            Some("done") => return Ok(frame),
            Some("pending") => {}
            other => return Err(format!("status of {key}: unexpected state {other:?}")),
        }
        if t0.elapsed() > timeout {
            return Err(format!("job {key} still pending after {timeout:?}"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Phase 4 — overload & backpressure, on dedicated in-process servers.
///
/// 4a: a `max_queue = 0` server sheds every submit: three submits must
/// come back as `retry_after` frames with a nonzero backoff, making
/// `serve.shed = 3` deterministic for the obs-diff floor gate.
///
/// 4b: a paused single-worker, `max_queue = 1` server whose one queue
/// slot is already taken: three concurrent clients are guaranteed to be
/// shed on their first submit, retry with seeded backoff + jitter
/// (honoring `retry_after_ms`), and — once the queue is resumed — every
/// job completes exactly once.
fn overload_phase(seed: u64) -> Result<OverloadOutcome, String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0BAD_10AD);
    // --- 4a: deterministic shed -----------------------------------------
    let server = Server::start(ServerConfig {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        workers: 1,
        max_queue: 0,
        cache_bytes: prebond3d_serve::cache::DEFAULT_BUDGET_BYTES,
        ..ServerConfig::default()
    })
    .map_err(|e| format!("spawn shed daemon: {e}"))?;
    let addr = server.addr().expect("tcp addr").to_string();
    let mut client = Client::connect_retry(&addr, &mut rng)?;
    let mut retry_after_frames = 0u64;
    for i in 0..3 {
        match client.try_submit(&job_line(&format!("shed-{i}"), 0, 0, "structural"), false)? {
            Submitted::RetryAfter(ms) => {
                if ms == 0 {
                    return Err("retry_after frame carried a zero backoff".into());
                }
                retry_after_frames += 1;
            }
            Submitted::Done(_) => return Err("zero-depth admission admitted a job".into()),
        }
    }
    let stats = client.request(r#"{"op":"stats"}"#)?;
    let shed_deterministic = stat(&stats, "queue", "shed");
    if shed_deterministic != 3 {
        return Err(format!("expected 3 deterministic sheds, got {shed_deterministic}"));
    }
    client.request(r#"{"op":"shutdown"}"#)?;
    server.join();

    // --- 4b: overload that drains through client retries ----------------
    // The queue starts paused with a single slot, and one job takes that
    // slot immediately: the three concurrent clients below MUST be shed
    // on their first submit. Once each has been shed at least once the
    // queue is resumed, and their backoff retries drain one at a time.
    let server = Server::start(ServerConfig {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        workers: 1,
        max_queue: 1,
        paused: true,
        cache_bytes: prebond3d_serve::cache::DEFAULT_BUDGET_BYTES,
        ..ServerConfig::default()
    })
    .map_err(|e| format!("spawn overload daemon: {e}"))?;
    let addr = server.addr().expect("tcp addr").to_string();
    let mut slot = Client::connect_retry(&addr, &mut rng)?;
    slot.send(&job_line("ov-slot", 2, 0, "structural"))?;
    let first = slot.read_frame()?;
    if first.get("ev").and_then(Value::as_str) != Some("accepted") {
        return Err(format!("slot-filling job not accepted: {first}"));
    }
    let shed_once = std::sync::atomic::AtomicU64::new(0);
    let results: Vec<Result<(JobResult, u64), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3u64)
            .map(|i| {
                let addr = addr.clone();
                let shed_once = &shed_once;
                scope.spawn(move || -> Result<(JobResult, u64), String> {
                    let mut rng = StdRng::seed_from_u64(seed ^ 0x0BAD_0000 ^ i);
                    let mut c = Client::connect_retry(&addr, &mut rng)?;
                    let line =
                        job_line(&format!("ov-{i}"), (i % 2) as usize, i as usize, "structural");
                    // The first attempt runs while the queue is held full
                    // (resume waits for all three of these), so a shed is
                    // guaranteed — this is the retry_after frame under
                    // genuine contention the phase exists to exercise.
                    let server_ms = match c.try_submit(&line, false)? {
                        Submitted::RetryAfter(ms) => ms,
                        Submitted::Done(_) => {
                            return Err("admitted into a held, full queue".into())
                        }
                    };
                    shed_once.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(
                        server_ms.max(backoff_ms(0, &mut rng)).min(2_000),
                    ));
                    let (job, sheds) = c.submit_retry(&line, false, &mut rng, 200)?;
                    Ok((job, sheds + 1))
                })
            })
            .collect();
        // Hold the queue until every client has been shed once, then let
        // it drain through their retries.
        let release = || -> Result<(), String> {
            let t0 = Instant::now();
            while shed_once.load(std::sync::atomic::Ordering::SeqCst) < 3 {
                if t0.elapsed() > Duration::from_secs(30) {
                    return Err("overload clients never reached their first shed".into());
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            let mut control = Client::connect(&addr)?;
            let frame = control.request(r#"{"op":"resume"}"#)?;
            if frame.get("ev").and_then(Value::as_str) != Some("resumed") {
                return Err(format!("expected resumed, got {frame}"));
            }
            Ok(())
        };
        let released = release();
        let results: Vec<Result<(JobResult, u64), String>> = handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("overload client panicked".into()))
            })
            .collect();
        if let Err(e) = released {
            return vec![Err(e)];
        }
        results
    });
    let mut client_sheds = 0u64;
    for r in results {
        let (job, sheds) = r?;
        if job.code != 0 {
            return Err(format!("overload job exited {}", job.code));
        }
        client_sheds += sheds;
    }
    if client_sheds < 3 {
        return Err(format!(
            "overload clients saw {client_sheds} retry_after frames, expected >= 3"
        ));
    }
    // Drain the slot-filling job's own frame stream.
    loop {
        let frame = slot.read_frame()?;
        if frame.get("ev").and_then(Value::as_str) == Some("done") {
            if frame.get("code").and_then(Value::as_u64) != Some(0) {
                return Err(format!("slot-filling overload job failed: {frame}"));
            }
            break;
        }
    }
    let stats = slot.request(r#"{"op":"stats"}"#)?;
    if stat(&stats, "queue", "shed") < 3 {
        return Err(format!("overload daemon shed fewer than 3 submits: {stats}"));
    }
    // The report must be byte-stable under PREBOND3D_STABLE_MS, so count
    // only the *constructed* sheds — 4a's three and each 4b client's
    // guaranteed first shed. Timing-dependent extra retries are asserted
    // live (>= floors above) but kept out of the report.
    let shed_total = shed_deterministic + 3;
    retry_after_frames += 3;
    slot.request(r#"{"op":"shutdown"}"#)?;
    server.join();
    Ok(OverloadOutcome {
        shed_deterministic,
        shed_total,
        retry_after_frames,
    })
}

/// Phase 5 — in-process crash recovery, always on (it produces the
/// floor-gated `serve.recovered = 3`).
///
/// A journaled server is started **paused**: three submitted jobs are
/// accepted and journaled but held in the queue, so an abort — the
/// in-process analogue of SIGKILL — strands exactly those three with no
/// timing dependence. The restart (also paused, to exercise the wire
/// `resume` op) must report exactly 3 recovered jobs, replay each to
/// `done` exactly once with `report` sub-objects byte-identical to
/// fresh reruns of the same specs, and dedup exact resubmits from the
/// journal instead of re-running them.
fn recovery_phase(seed: u64) -> Result<RecoveryOutcome, String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4EC0_7E44);
    let journal = std::env::temp_dir().join(format!(
        "prebond3d-loadgen-recovery-{}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&journal);
    let make_config = |paused| ServerConfig {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        workers: 1,
        journal: Some(journal.clone()),
        paused,
        cache_bytes: prebond3d_serve::cache::DEFAULT_BUDGET_BYTES,
        ..ServerConfig::default()
    };
    let server =
        Server::start(make_config(true)).map_err(|e| format!("spawn journaled daemon: {e}"))?;
    let addr = server.addr().expect("tcp addr").to_string();

    // Three jobs are accepted and journaled into the held queue.
    let lines: Vec<String> = (0..3)
        .map(|i| job_line(&format!("rec-{i}"), i % 2, i, "structural"))
        .collect();
    let mut conns = Vec::new();
    let mut keys = Vec::new();
    for line in &lines {
        let mut c = Client::connect_retry(&addr, &mut rng)?;
        c.send(line)?;
        let f = c.read_frame()?;
        if f.get("ev").and_then(Value::as_str) != Some("accepted") {
            return Err(format!("recovery job not accepted: {f}"));
        }
        let key = f
            .get("key")
            .and_then(Value::as_str)
            .ok_or("accepted frame without a key")?
            .to_string();
        keys.push(key);
        conns.push(c);
    }
    // The held queue makes the crash window deterministic: all three
    // jobs are journaled `accepted`, none running.
    let mut control = Client::connect(&addr)?;
    let stats = control.request(r#"{"op":"stats"}"#)?;
    if stat(&stats, "queue", "depth") != 3 {
        return Err(format!("held queue should hold 3 jobs: {stats}"));
    }
    server.abort();
    server.join();
    drop(conns);
    drop(control);

    // Restart on the same journal — paused again, so the recovered jobs
    // are observable *before* they run, then released over the wire.
    let server = Server::start(make_config(true)).map_err(|e| format!("restart daemon: {e}"))?;
    let addr = server.addr().expect("tcp addr").to_string();
    let mut control = Client::connect_retry(&addr, &mut rng)?;
    let stats = control.request(r#"{"op":"stats"}"#)?;
    let recovered = stat(&stats, "journal", "recovered");
    if recovered != 3 {
        return Err(format!("expected 3 recovered jobs, got {recovered}"));
    }
    if stat(&stats, "journal", "pending") != 3 || stat(&stats, "queue", "depth") != 3 {
        return Err(format!("recovered jobs not re-queued as pending: {stats}"));
    }
    let frame = control.request(r#"{"op":"resume"}"#)?;
    if frame.get("ev").and_then(Value::as_str) != Some("resumed") {
        return Err(format!("expected resumed, got {frame}"));
    }
    for (i, key) in keys.iter().enumerate() {
        let status = poll_status_done(&mut control, key, Duration::from_secs(120))?;
        if status.get("code").and_then(Value::as_u64) != Some(0) {
            return Err(format!("recovered job {key} failed: {status}"));
        }
        let recovered_report = status
            .get("report")
            .map(Value::to_string)
            .ok_or("recovered job has no report")?;
        // Byte-identity: a fresh-id rerun of the same spec must produce
        // the exact same deterministic report.
        let fresh = job_line(&format!("rec-fresh-{i}"), i % 2, i, "structural");
        let rerun = control.submit(&fresh, false)?;
        if rerun.report.as_deref() != Some(recovered_report.as_str()) {
            return Err(format!(
                "recovered report for {key} differs from a fresh rerun"
            ));
        }
        // Exactly-once: resubmitting the original line replays from the
        // journal instead of running a second time, under the same
        // content-addressed key.
        let replay = control.submit(&lines[i], false)?;
        if !replay.dedup || replay.cache != "journal" {
            return Err(format!("resubmit of {key} re-ran instead of deduping"));
        }
        if replay.key != *key {
            return Err(format!(
                "idempotency key drifted across restart: {} != {key}",
                replay.key
            ));
        }
        if replay.report.as_deref() != Some(recovered_report.as_str()) {
            return Err(format!("dedup replay of {key} returned a different report"));
        }
    }
    let stats = control.request(r#"{"op":"stats"}"#)?;
    let outcome = RecoveryOutcome {
        recovered,
        deduped: stat(&stats, "journal", "deduped"),
        journal_pending: stat(&stats, "journal", "pending"),
        journal_done: stat(&stats, "journal", "done"),
    };
    if outcome.journal_pending != 0 {
        return Err(format!(
            "{} journal entrie(s) still pending after the drain",
            outcome.journal_pending
        ));
    }
    control.request(r#"{"op":"shutdown"}"#)?;
    server.join();
    let _ = std::fs::remove_file(&journal);
    Ok(outcome)
}

/// Kills the spawned daemon on drop so an early error cannot leak it.
struct KillOnDrop(std::process::Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Phase 6 — external kill-and-recover, opt-in via `--daemon-bin`: the
/// real daemon binary is spawned with `--journal --paused`, four jobs
/// are accepted into the held queue, the daemon is SIGKILLed — no
/// shutdown handler, no flush — and restarted (not paused) on the same
/// journal. Exactly those four jobs must recover and drain exactly
/// once, with reports byte-identical to fresh reruns. Returns how many
/// jobs the restarted daemon recovered (always 4 on success).
fn kill_recover_phase(bin: &std::path::Path, seed: u64) -> Result<u64, String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5167_4B11);
    let tag = std::process::id();
    let journal = std::env::temp_dir().join(format!("prebond3d-killrec-{tag}.wal"));
    let port_file = std::env::temp_dir().join(format!("prebond3d-killrec-{tag}.port"));
    let _ = std::fs::remove_file(&journal);
    let spawn = |port_file: &std::path::Path, paused: bool| -> Result<KillOnDrop, String> {
        let _ = std::fs::remove_file(port_file);
        let mut cmd = std::process::Command::new(bin);
        cmd.arg("--listen")
            .arg("127.0.0.1:0")
            .arg("--workers")
            .arg("1")
            .arg("--journal")
            .arg(&journal)
            .arg("--port-file")
            .arg(port_file)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null());
        if paused {
            cmd.arg("--paused");
        }
        cmd.spawn()
            .map(KillOnDrop)
            .map_err(|e| format!("spawn {}: {e}", bin.display()))
    };
    let wait_addr = |port_file: &std::path::Path| -> Result<String, String> {
        let t0 = Instant::now();
        loop {
            if let Ok(text) = std::fs::read_to_string(port_file) {
                if let Ok(port) = text.trim().parse::<u16>() {
                    return Ok(format!("127.0.0.1:{port}"));
                }
            }
            if t0.elapsed() > Duration::from_secs(20) {
                return Err(format!("daemon never wrote {}", port_file.display()));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    };

    let mut child = spawn(&port_file, true)?;
    let addr = wait_addr(&port_file)?;
    // Four distinct specs into the held queue: accepted, journaled,
    // never dequeued — the crash window is fully deterministic.
    let specs: [(usize, usize); 4] = [(2, 0), (0, 0), (1, 1), (0, 2)];
    let lines: Vec<String> = specs
        .iter()
        .enumerate()
        .map(|(i, &(sub, method))| job_line(&format!("kr-{i}"), sub, method, "structural"))
        .collect();
    let mut conns = Vec::new();
    let mut keys = Vec::new();
    for line in &lines {
        let mut c = Client::connect_retry(&addr, &mut rng)?;
        c.send(line)?;
        let f = c.read_frame()?;
        if f.get("ev").and_then(Value::as_str) != Some("accepted") {
            return Err(format!("kill-recover job not accepted: {f}"));
        }
        keys.push(
            f.get("key")
                .and_then(Value::as_str)
                .ok_or("accepted frame without a key")?
                .to_string(),
        );
        conns.push(c);
    }
    // All four must be sitting in the held queue, then SIGKILL: no
    // shutdown handler, no flush, no mercy.
    let mut control = Client::connect(&addr)?;
    let stats = control.request(r#"{"op":"stats"}"#)?;
    if stat(&stats, "queue", "depth") != 4 {
        return Err(format!("held daemon should hold 4 jobs: {stats}"));
    }
    let _ = child.0.kill();
    let _ = child.0.wait();
    drop(conns);
    drop(control);

    // Restart (not paused) on the same journal: exactly the four
    // stranded jobs replay and drain.
    let mut child = spawn(&port_file, false)?;
    let addr = wait_addr(&port_file)?;
    let mut control = Client::connect_retry(&addr, &mut rng)?;
    let stats = control.request(r#"{"op":"stats"}"#)?;
    let recovered = stat(&stats, "journal", "recovered");
    if recovered != 4 {
        return Err(format!(
            "expected 4 recovered jobs after SIGKILL, got {recovered}"
        ));
    }
    for (i, key) in keys.iter().enumerate() {
        let status = poll_status_done(&mut control, key, Duration::from_secs(180))?;
        if status.get("code").and_then(Value::as_u64) != Some(0) {
            return Err(format!("kill-recovered job {key} failed: {status}"));
        }
        let recovered_report = status
            .get("report")
            .map(Value::to_string)
            .ok_or("kill-recovered job has no report")?;
        // Byte-identity against a fresh rerun, exactly-once via dedup.
        let (sub, method) = specs[i];
        let fresh = job_line(&format!("kr-fresh-{i}"), sub, method, "structural");
        let rerun = control.submit(&fresh, false)?;
        if rerun.report.as_deref() != Some(recovered_report.as_str()) {
            return Err(format!(
                "kill-recovered report for {key} differs from a fresh rerun"
            ));
        }
        let replay = control.submit(&lines[i], false)?;
        if !replay.dedup {
            return Err(format!("kill-recover resubmit of {key} ran twice"));
        }
    }
    control.request(r#"{"op":"shutdown"}"#)?;
    let _ = child.0.wait();
    drop(child);
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&port_file);
    Ok(recovered)
}

/// Run the load, write `BENCH_serve.json`, and check the serving
/// contract.
///
/// # Errors
///
/// Connection/protocol failures, a non-zero job code, a hit delta of
/// zero, an empty cold histogram (the daemon was not cold), or a warm
/// p50 that does not beat the cold p50.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenSummary, String> {
    let started = Instant::now();
    // An in-process daemon when no --addr: fixed worker count so the mix
    // concurrency (and thus queueing) is environment-independent.
    let server = match &config.addr {
        Some(_) => None,
        None => Some(
            Server::start(ServerConfig {
                bind: Bind::Tcp("127.0.0.1:0".to_string()),
                workers: 4,
                cache_bytes: prebond3d_serve::cache::DEFAULT_BUDGET_BYTES,
                ..ServerConfig::default()
            })
            .map_err(|e| format!("spawn daemon: {e}"))?,
        ),
    };
    let addr = match (&config.addr, &server) {
        (Some(a), _) => a.clone(),
        (None, Some(s)) => s.addr().expect("tcp daemon has an addr").to_string(),
        (None, None) => unreachable!(),
    };

    let mut control = Client::connect(&addr)?;
    let before = control.request(r#"{"op":"stats"}"#)?;

    // --- Phase 1: sequential priming, one job per distinct substrate ---
    let mut cold = obs::hist::Hist::new();
    let mut warm = obs::hist::Hist::new();
    let mut phase_agg: std::collections::BTreeMap<String, (u64, f64)> =
        std::collections::BTreeMap::new();
    let mut phase_hists: std::collections::BTreeMap<String, obs::hist::Hist> =
        std::collections::BTreeMap::new();
    let mut bad_jobs: Vec<String> = Vec::new();
    let mut fold = |r: &JobResult| {
        if r.measured {
            if r.cache == "hit" {
                warm.record(r.server_ns);
            } else {
                cold.record(r.server_ns);
            }
        }
        for (path, count, ms) in &r.phases {
            let e = phase_agg.entry(path.clone()).or_insert((0, 0.0));
            e.0 += count;
            e.1 += ms;
            phase_hists
                .entry(path.clone())
                .or_default()
                .record((ms.max(0.0) * 1.0e6) as u64);
        }
    };
    // The measured-probe job goes first while its substrate is still
    // cold, then one cheap structural job per remaining substrate.
    let (m_sub, m_method, m_probe) = MEASURED;
    let prime: Vec<(String, bool)> =
        std::iter::once((job_line("prime-measured", m_sub, m_method, m_probe), true))
            .chain(
                SUBSTRATES
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != m_sub)
                    .map(|(i, _)| (job_line(&format!("prime-{i}"), i, 0, "structural"), false)),
            )
            .collect();
    for (line, measured) in &prime {
        let r = control.submit(line, *measured)?;
        if r.code != 0 {
            bad_jobs.push(format!("priming job exited {}", r.code));
        }
        fold(&r);
    }

    // --- Phase 2: seeded multi-client mix -------------------------------
    let results: Vec<Result<Vec<JobResult>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|c| {
                let addr = addr.clone();
                let jobs = config.jobs_per_client;
                let seed = config.seed;
                scope.spawn(move || -> Result<Vec<JobResult>, String> {
                    let mut rng = StdRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9E37));
                    let mut client = Client::connect(&addr)?;
                    let mut out = Vec::with_capacity(jobs);
                    let (m_sub, m_method, m_probe) = MEASURED;
                    for j in 0..jobs {
                        // Each client's first job replays the measured
                        // spec warm, guaranteeing warm samples; the rest
                        // draw from the seeded mix (the measured spec
                        // can recur — still a matched warm sample).
                        let (substrate, method, probe) = if j == 0 {
                            (m_sub, m_method, m_probe)
                        } else {
                            let substrate = rng.gen_range(0..SUBSTRATES.len());
                            let method = rng.gen_range(0..METHODS.len());
                            let probe = if substrate == m_sub && rng.gen_bool(0.4) {
                                m_probe
                            } else {
                                "structural"
                            };
                            (substrate, method, probe)
                        };
                        let measured = (substrate, method, probe) == (m_sub, m_method, m_probe);
                        let line = job_line(&format!("c{c}-j{j}"), substrate, method, probe);
                        out.push(client.submit(&line, measured)?);
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    for r in results {
        for job in r? {
            if job.code != 0 {
                bad_jobs.push(format!("mix job exited {}", job.code));
            }
            fold(&job);
        }
    }

    // --- Phase 3: saturation sweep --------------------------------------
    // Bursts of warm structural jobs at increasing client counts; the
    // jobs/sec row per count shows where the worker pool saturates.
    // Everything here is a cache hit, so throughput measures dispatch +
    // queueing, not flow compute.
    let mut saturation: Vec<Value> = Vec::new();
    let mut sweep_total = 0u64;
    for clients in SWEEP_CLIENTS {
        let round_start = Instant::now();
        let round: Vec<Result<Vec<JobResult>, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let addr = addr.clone();
                    scope.spawn(move || -> Result<Vec<JobResult>, String> {
                        let mut client = Client::connect(&addr)?;
                        let mut out = Vec::with_capacity(SWEEP_JOBS);
                        for j in 0..SWEEP_JOBS {
                            let substrate = (c + j) % SUBSTRATES.len();
                            let line = job_line(
                                &format!("s{clients}-c{c}-j{j}"),
                                substrate,
                                0,
                                "structural",
                            );
                            out.push(client.submit(&line, false)?);
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err("sweep client panicked".into()))
                })
                .collect()
        });
        let elapsed = round_start.elapsed().as_secs_f64();
        let mut done = 0u64;
        for r in round {
            for job in r? {
                if job.code != 0 {
                    bad_jobs.push(format!("sweep job exited {}", job.code));
                }
                done += 1;
                fold(&job);
            }
        }
        sweep_total += done;
        let jobs_per_sec = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        saturation.push(Value::obj([
            ("clients", clients.into()),
            ("jobs", done.into()),
            ("elapsed_ms", (elapsed * 1.0e3).into()),
            ("jobs_per_sec", jobs_per_sec.into()),
        ]));
    }

    let after = control.request(r#"{"op":"stats"}"#)?;
    if config.shutdown || server.is_some() {
        let bye = control.request(r#"{"op":"shutdown"}"#)?;
        if bye.get("ev").and_then(Value::as_str) != Some("bye") {
            return Err(format!("expected bye, got {bye}"));
        }
    }
    if let Some(server) = server {
        server.join();
    }

    // --- Phase 4: overload & backpressure (dedicated in-process daemons) -
    let overload = overload_phase(config.seed)?;
    // --- Phase 5: in-process crash recovery ------------------------------
    let recovery = recovery_phase(config.seed)?;
    // --- Phase 6: external kill-and-recover (opt-in) ---------------------
    let kill_recovered = match &config.daemon_bin {
        Some(bin) => kill_recover_phase(bin, config.seed)?,
        None => 0,
    };

    // --- Deltas, report, contract ---------------------------------------
    let delta = |block: &str, key: &str| stat(&after, block, key) - stat(&before, block, key);
    let total_jobs =
        prime.len() as u64 + (config.clients * config.jobs_per_client) as u64 + sweep_total;
    let hits = delta("cache", "hits");
    let misses = delta("cache", "misses");
    let evictions = delta("cache", "evictions");

    let work_row = |counter: &str, reference: u64, optimized: u64| {
        let reduction = if reference > 0 {
            1.0 - optimized as f64 / reference as f64
        } else {
            0.0
        };
        Value::obj([
            ("counter", counter.into()),
            ("substrate", "job mix".into()),
            ("reference", reference.into()),
            ("optimized", optimized.into()),
            ("reduction", reduction.into()),
        ])
    };
    let phases: Vec<Value> = phase_agg
        .iter()
        .map(|(path, &(count, ms))| {
            let h = phase_hists.get(path);
            Value::obj([
                ("path", path.as_str().into()),
                ("count", count.into()),
                ("ms", ms.into()),
                ("p50_ns", h.map_or(0, |h| h.quantile(0.50)).into()),
                ("p95_ns", h.map_or(0, |h| h.quantile(0.95)).into()),
                ("p99_ns", h.map_or(0, |h| h.quantile(0.99)).into()),
                ("max_ns", h.map_or(0, obs::hist::Hist::max).into()),
            ])
        })
        .collect();
    let mut mem_fields: Vec<(&'static str, Value)> = Vec::new();
    if let Some(kb) = obs::mem::rss_now_kb() {
        mem_fields.push(("rss_now_kb", kb.into()));
    }
    if let Some(kb) = obs::mem::rss_peak_kb() {
        mem_fields.push(("rss_peak_kb", kb.into()));
    }
    let mut doc = Value::obj([
        ("experiment", "serve".into()),
        ("threads", pool::threads().into()),
        (
            "elapsed_ms",
            (started.elapsed().as_secs_f64() * 1.0e3).into(),
        ),
        ("clients", config.clients.into()),
        ("jobs_per_client", config.jobs_per_client.into()),
        ("seed", config.seed.into()),
        ("phases", Value::Arr(phases)),
        ("saturation", Value::Arr(saturation)),
        (
            "hists",
            Value::obj([
                ("serve.latency_cold_ns", cold.to_json()),
                ("serve.latency_warm_ns", warm.to_json()),
            ]),
        ),
        (
            "jobs",
            Value::obj([
                ("submitted", delta("jobs", "submitted").into()),
                ("done", delta("jobs", "done").into()),
                ("failed", delta("jobs", "failed").into()),
                ("protocol_errors", delta("jobs", "protocol_errors").into()),
            ]),
        ),
        (
            "cache",
            Value::obj([
                ("hits", hits.into()),
                ("misses", misses.into()),
                ("evictions", evictions.into()),
                ("entries", stat(&after, "cache", "entries").into()),
                ("budget", stat(&after, "cache", "budget").into()),
            ]),
        ),
        ("mem", Value::obj(mem_fields)),
        (
            "backpressure",
            Value::obj([
                ("shed", overload.shed_total.into()),
                ("shed_deterministic", overload.shed_deterministic.into()),
                ("retry_after_frames", overload.retry_after_frames.into()),
            ]),
        ),
        (
            "recovery",
            Value::obj([
                ("recovered", recovery.recovered.into()),
                ("deduped", recovery.deduped.into()),
                ("journal_pending", recovery.journal_pending.into()),
                ("journal_done", recovery.journal_done.into()),
                ("kill_recovered", kill_recovered.into()),
            ]),
        ),
        (
            "work",
            Value::Arr(vec![
                work_row("serve.cache_misses", total_jobs, misses),
                work_row("serve.cache_hits", 0, hits),
                work_row("serve.cache_evictions", 0, evictions),
                // Floor-gated rows: the overload and recovery phases are
                // constructed so these are exactly 3 on every run.
                work_row("serve.shed", 0, overload.shed_deterministic),
                work_row("serve.recovered", 0, recovery.recovered),
            ]),
        ),
    ]);
    // The contract checks read the *measured* values; the stable-ms
    // normalization only applies to what lands on disk.
    let cold_p50_ms = cold.quantile(0.50) as f64 / 1.0e6;
    let warm_p50_ms = warm.quantile(0.50) as f64 / 1.0e6;
    if resil::stable_ms() {
        report::zero_ms(&mut doc);
    }
    let report_path = report::report_dir().join("BENCH_serve.json");
    resil::atomic_write(&report_path, &format!("{doc}\n")).map_err(|e| e.to_string())?;

    if !bad_jobs.is_empty() {
        return Err(format!(
            "{} job(s) failed: {}",
            bad_jobs.len(),
            bad_jobs.join("; ")
        ));
    }
    if delta("jobs", "submitted") != total_jobs
        || delta("jobs", "done") + delta("jobs", "failed") != total_jobs
    {
        return Err(format!(
            "job accounting off: submitted {} done {} failed {} expected {total_jobs}",
            delta("jobs", "submitted"),
            delta("jobs", "done"),
            delta("jobs", "failed"),
        ));
    }
    if hits == 0 {
        return Err("serve.cache_hits did not grow — the warm cache never hit".into());
    }
    if cold.is_empty() {
        return Err(
            "no cold (miss) jobs observed — the daemon was already warm; \
             restart it for a cold measurement"
                .into(),
        );
    }
    if warm_p50_ms >= cold_p50_ms {
        return Err(format!(
            "warm p50 {warm_p50_ms:.2} ms does not beat cold p50 {cold_p50_ms:.2} ms"
        ));
    }
    Ok(LoadgenSummary {
        jobs: total_jobs,
        hits,
        misses,
        cold_p50_ms,
        warm_p50_ms,
        shed: overload.shed_deterministic,
        recovered: recovery.recovered,
        kill_recovered,
        report_path,
    })
}

//! Table IV: fault coverage and pattern counts under tight timing.
//!
//! Stuck-at and transition-fault ATPG on the testable netlists produced by
//! Agrawal's method and ours (performance-optimized scenario). The paper's
//! claim: equal coverage, slightly fewer patterns for ours.

use std::fmt::Write as _;

use prebond3d_atpg::engine::{run_stuck_at, run_transition, AtpgConfig};
use prebond3d_dft::prebond_access;
use prebond3d_obs::json::Value;
use prebond3d_wcm::flow::{FlowConfig, Method};

use crate::context::{self, DieCase};
use crate::lintflow::checked_run_flow;

/// Coverage/pattern numbers for one method on one die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Stuck-at (coverage, patterns).
    pub stuck_at: (f64, usize),
    /// Transition (coverage, patterns).
    pub transition: (f64, usize),
}

impl Cell {
    fn to_json(self) -> Value {
        let pair = |(cov, patterns): (f64, usize)| {
            Value::obj([("coverage", cov.into()), ("patterns", patterns.into())])
        };
        Value::obj([
            ("stuck_at", pair(self.stuck_at)),
            ("transition", pair(self.transition)),
        ])
    }

    fn from_json(v: &Value) -> Option<Cell> {
        let pair = |v: &Value| {
            Some((
                v.get("coverage")?.as_f64()?,
                v.get("patterns")?.as_u64()? as usize,
            ))
        };
        Some(Cell {
            stuck_at: pair(v.get("stuck_at")?)?,
            transition: pair(v.get("transition")?)?,
        })
    }
}

/// One die row.
#[derive(Debug, Clone)]
pub struct Row {
    /// `"b20 Die1"`.
    pub label: String,
    /// Agrawal's numbers.
    pub agrawal: Cell,
    /// Ours.
    pub ours: Cell,
}

impl Row {
    /// Checkpoint codec: serialize for the resume log.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("label", self.label.as_str().into()),
            ("agrawal", self.agrawal.to_json()),
            ("ours", self.ours.to_json()),
        ])
    }

    /// Checkpoint codec: revive a row from the resume log.
    pub fn from_json(v: &Value) -> Option<Row> {
        Some(Row {
            label: v.get("label")?.as_str()?.to_string(),
            agrawal: Cell::from_json(v.get("agrawal")?)?,
            ours: Cell::from_json(v.get("ours")?)?,
        })
    }
}

fn measure(case: &DieCase, method: Method, atpg: &AtpgConfig) -> Cell {
    let lib = context::library();
    let r = checked_run_flow(
        &case.label(),
        &case.netlist,
        &case.placement,
        &lib,
        &FlowConfig::performance_optimized(method),
    )
    .expect("flow runs and lints clean");
    let access = prebond_access(&r.testable);
    // Huge dies get size-scaled deterministic effort (PODEM implication is
    // linear in gate count, so the b18 dies would otherwise dominate).
    let scaled = AtpgConfig::scaled_for(r.testable.netlist.len());
    let atpg = if r.testable.netlist.len() > 15_000 {
        &scaled
    } else {
        atpg
    };
    let sa = run_stuck_at(&r.testable.netlist, &access, atpg);
    let tr = run_transition(&r.testable.netlist, &access, atpg);
    Cell {
        stuck_at: (sa.test_coverage(), sa.pattern_count()),
        transition: (tr.test_coverage(), tr.pattern_count()),
    }
}

/// Run for one die.
pub fn run_die(case: &DieCase, atpg: &AtpgConfig) -> Row {
    Row {
        label: case.label(),
        agrawal: measure(case, Method::Agrawal, atpg),
        ours: measure(case, Method::Ours, atpg),
    }
}

/// Run over the selected circuits, one pool worker per die —
/// panic-isolated and checkpointed.
pub fn run(atpg: &AtpgConfig) -> Vec<Row> {
    let cases = context::load_circuits(&context::circuit_names());
    crate::report::resilient_par_die_scopes(
        "table4",
        &cases,
        DieCase::label,
        |case| run_die(case, atpg),
        Row::to_json,
        Row::from_json,
    )
    .into_iter()
    .flatten()
    .collect()
}

/// Render paper-style `(coverage, #patterns)` cells.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table IV — fault coverage and pattern count (tight timing)"
    );
    let _ = writeln!(
        out,
        "{:<12} | {:>18} {:>18} | {:>18} {:>18}",
        "", "Agrawal stuck-at", "Agrawal transition", "Ours stuck-at", "Ours transition"
    );
    let cell = |c: (f64, usize)| format!("({}, {})", crate::pct(c.0), c.1);
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} | {:>18} {:>18} | {:>18} {:>18}",
            r.label,
            cell(r.agrawal.stuck_at),
            cell(r.agrawal.transition),
            cell(r.ours.stuck_at),
            cell(r.ours.transition),
        );
    }
    let n = rows.len().max(1) as f64;
    let avg = |f: &dyn Fn(&Row) -> (f64, usize)| {
        (
            rows.iter().map(|r| f(r).0).sum::<f64>() / n,
            rows.iter().map(|r| f(r).1 as f64).sum::<f64>() / n,
        )
    };
    let (asc, asp) = avg(&|r| r.agrawal.stuck_at);
    let (atc, atp) = avg(&|r| r.agrawal.transition);
    let (osc, osp) = avg(&|r| r.ours.stuck_at);
    let (otc, otp) = avg(&|r| r.ours.transition);
    let _ = writeln!(
        out,
        "{:<12} | ({}, {:.2}) ({}, {:.2}) | ({}, {:.2}) ({}, {:.2})",
        "Average",
        crate::pct(asc),
        asp,
        crate::pct(atc),
        atp,
        crate::pct(osc),
        osp,
        crate::pct(otc),
        otp,
    );
    let _ = writeln!(
        out,
        "coverage delta (ours − Agrawal): stuck-at {:+.3}%, transition {:+.3}%",
        100.0 * (osc - asc),
        100.0 * (otc - atc),
    );
    out
}

//! Benchmarks over every substrate and the core algorithms, on a
//! hand-rolled harness (the workspace builds without a registry, so
//! `criterion` is not available; DESIGN.md §7).
//!
//! Groups:
//! * `netlist` — generation + topological traversal,
//! * `partition` — FM vs random vs level,
//! * `placement` — annealing refinement,
//! * `sta` — full timing analysis,
//! * `atpg` — bit-parallel fault-sim batches and PODEM,
//! * `wcm` — Algorithm 1 (graph construction) and Algorithm 2 (clique
//!   partitioning), in both timing-model fidelities,
//! * `flow` — the end-to-end Fig. 6 flow per method,
//! * `obs` — probe overhead with the sink disabled (must be ~ns/probe, so
//!   instrumentation can stay on in release builds).
//!
//! Run with `cargo bench -p prebond3d-bench`; pass a substring to filter:
//! `cargo bench -p prebond3d-bench -- wcm`. Each benchmark reports
//! min/mean/max per-iteration wall time. `PREBOND3D_BENCH_SECS` bounds
//! per-benchmark measuring time (default 1s).

use std::time::{Duration, Instant};

use prebond3d_atpg::engine::{run_stuck_at, AtpgConfig};
use prebond3d_atpg::faultsim::FaultSimulator;
use prebond3d_atpg::sim::Pattern;
use prebond3d_atpg::{FaultList, TestAccess};
use prebond3d_celllib::Library;
use prebond3d_netlist::{itc99, traverse, Netlist};
use prebond3d_obs as obs;
use prebond3d_partition::{fm, level, random as rpart, PartitionSpec};
use prebond3d_place::{anneal, grid, place, PlaceConfig, Placement};
use prebond3d_sta::whatif::ReuseKind;
use prebond3d_sta::{analyze, StaConfig};
use prebond3d_wcm::flow::{run_flow, FlowConfig, Method};
use prebond3d_wcm::{clique, graph, MergePolicy, StructuralProbe, Thresholds, TimingModel};

/// Minimal fixed-effort benchmark runner.
struct Harness {
    filter: Option<String>,
    budget: Duration,
}

impl Harness {
    fn from_args() -> Harness {
        // `cargo bench -- <filter>` forwards trailing args; `--bench` is
        // injected by cargo's libtest convention — ignore flags.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let budget = std::env::var("PREBOND3D_BENCH_SECS")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map_or(Duration::from_secs(1), Duration::from_secs_f64);
        Harness { filter, budget }
    }

    /// Time `f` until the budget is spent (at least 3 iterations), and
    /// print min/mean/max per iteration.
    fn bench<T>(&self, group: &str, name: &str, mut f: impl FnMut() -> T) {
        let full = format!("{group}/{name}");
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up (excluded from stats).
        std::hint::black_box(f());
        let mut times: Vec<Duration> = Vec::new();
        let started = Instant::now();
        while times.len() < 3 || (started.elapsed() < self.budget && times.len() < 1000) {
            let t = Instant::now();
            std::hint::black_box(f());
            times.push(t.elapsed());
        }
        let min = times.iter().min().unwrap();
        let max = times.iter().max().unwrap();
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{full:<40} {:>5} iters  min {:>12?}  mean {:>12?}  max {:>12?}",
            times.len(),
            min,
            mean,
            max
        );
    }
}

fn medium_die() -> Netlist {
    let spec = itc99::circuit("b12").expect("known");
    itc99::generate_die(&spec.dies[1])
}

fn placed(die: &Netlist) -> Placement {
    place(die, &PlaceConfig::default(), 1)
}

fn bench_netlist(h: &Harness) {
    let spec = itc99::circuit("b12").expect("known");
    h.bench("netlist", "generate_b12_die1", || {
        itc99::generate_die(&spec.dies[1])
    });
    let die = medium_die();
    h.bench("netlist", "topological_order", || {
        traverse::combinational_order(&die)
    });
}

fn bench_partition(h: &Harness) {
    let flat = itc99::generate_flat("bench", 1500, 120, 16, 16, 3);
    let spec = PartitionSpec::new(4);
    h.bench("partition", "fm_4way_1500", || {
        fm::partition(&flat, &spec, 7)
    });
    h.bench("partition", "level_4way_1500", || {
        level::partition(&flat, &spec)
    });
    h.bench("partition", "random_4way_1500", || {
        rpart::partition(&flat, &spec, 7)
    });
}

fn bench_placement(h: &Harness) {
    let die = medium_die();
    let config = PlaceConfig::default();
    h.bench("placement", "anneal_b12_die1", || {
        let mut p = grid::initial(&die, &config);
        anneal::refine(&die, &mut p, &config, 1);
        p
    });
}

fn bench_sta(h: &Harness) {
    let die = medium_die();
    let placement = placed(&die);
    let lib = Library::nangate45_like();
    h.bench("sta", "analyze_b12_die1", || {
        analyze(&die, &placement, &lib, &StaConfig::relaxed())
    });
}

fn bench_atpg(h: &Harness) {
    let die = medium_die();
    let access = TestAccess::full_scan(&die);
    let list = FaultList::collapsed(&die);
    let mut fs = FaultSimulator::new(&die);
    let patterns: Vec<Pattern> = (0..64)
        .map(|i| Pattern {
            bits: (0..access.width()).map(|k| (i + k) % 3 == 0).collect(),
        })
        .collect();
    let alive = vec![true; list.len()];
    h.bench("atpg", "faultsim_64_patterns", || {
        fs.simulate_batch(&die, &access, &patterns, &list.faults, &alive)
            .unwrap()
            .iter()
            .fold(0u64, |acc, &m| acc ^ m)
    });
    h.bench("atpg", "stuck_at_atpg_fast", || {
        run_stuck_at(&die, &access, &AtpgConfig::fast())
    });
}

fn bench_wcm(h: &Harness) {
    let die = medium_die();
    let placement = placed(&die);
    let lib = Library::nangate45_like();
    let report = analyze(&die, &placement, &lib, &StaConfig::relaxed());
    let probe = StructuralProbe::default();
    let th = Thresholds::area_optimized(&lib);
    let ffs = die.flip_flops();
    let tsvs = die.inbound_tsvs();

    // Ablation: the paper's accurate timing model vs Agrawal's
    // capacitance-only model, at graph-construction time.
    for (label, include_wire) in [("graph_accurate", true), ("graph_cap_only", false)] {
        let model = TimingModel::new(&die, &placement, &lib, &report, &report, include_wire);
        h.bench("wcm", label, || {
            graph::build(&model, &th, &probe, &ffs, &tsvs, ReuseKind::Inbound)
        });
    }

    let model = TimingModel::new(&die, &placement, &lib, &report, &report, true);
    let built = graph::build(&model, &th, &probe, &ffs, &tsvs, ReuseKind::Inbound);
    h.bench("wcm", "clique_partition", || {
        clique::partition(&built, &model, &th, MergePolicy::Accurate)
    });
}

fn bench_flow(h: &Harness) {
    let die = medium_die();
    let placement = placed(&die);
    let lib = Library::nangate45_like();
    for method in [Method::Ours, Method::Agrawal, Method::Li, Method::Naive] {
        let name = format!("area_{}", method.label());
        // bench() takes &str; the leaked label is tiny and lives once.
        let name: &str = Box::leak(name.into_boxed_str());
        h.bench("flow", name, || {
            run_flow(&die, &placement, &lib, &FlowConfig::area_optimized(method))
                .expect("flow runs")
        });
    }
}

fn bench_obs(h: &Harness) {
    // With the sink off and recording off, a span + counter pair must cost
    // nanoseconds — this is the "instrumentation can stay on in release
    // builds" contract.
    assert!(
        !obs::is_active(),
        "obs must be disabled for the overhead bench (unset PREBOND3D_OBS)"
    );
    h.bench("obs", "disabled_span_and_count_x1000", || {
        for _ in 0..1000 {
            let _g = obs::span("bench_probe");
            obs::count("bench.counter", 1);
        }
    });
}

fn main() {
    let h = Harness::from_args();
    bench_netlist(&h);
    bench_partition(&h);
    bench_placement(&h);
    bench_sta(&h);
    bench_atpg(&h);
    bench_wcm(&h);
    bench_flow(&h);
    bench_obs(&h);
}

//! Criterion benchmarks over every substrate and the core algorithms.
//!
//! Groups:
//! * `netlist` — generation + topological traversal,
//! * `partition` — FM vs random vs level,
//! * `placement` — annealing refinement,
//! * `sta` — full timing analysis,
//! * `atpg` — bit-parallel fault-sim batches and PODEM,
//! * `wcm` — Algorithm 1 (graph construction) and Algorithm 2 (clique
//!   partitioning), in both timing-model fidelities (the runtime cost of
//!   the paper's accurate model vs Agrawal's capacitance-only one),
//! * `flow` — the end-to-end Fig. 6 flow per method.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use prebond3d_atpg::engine::{run_stuck_at, AtpgConfig};
use prebond3d_atpg::faultsim::FaultSimulator;
use prebond3d_atpg::sim::Pattern;
use prebond3d_atpg::{FaultList, TestAccess};
use prebond3d_celllib::Library;
use prebond3d_netlist::{itc99, traverse, Netlist};
use prebond3d_partition::{fm, level, random as rpart, PartitionSpec};
use prebond3d_place::{anneal, grid, place, PlaceConfig, Placement};
use prebond3d_sta::whatif::ReuseKind;
use prebond3d_sta::{analyze, StaConfig};
use prebond3d_wcm::flow::{run_flow, FlowConfig, Method};
use prebond3d_wcm::{clique, graph, MergePolicy, StructuralProbe, Thresholds, TimingModel};

fn medium_die() -> Netlist {
    let spec = itc99::circuit("b12").expect("known");
    itc99::generate_die(&spec.dies[1])
}

fn placed(die: &Netlist) -> Placement {
    place(die, &PlaceConfig::default(), 1)
}

fn bench_netlist(c: &mut Criterion) {
    let mut g = c.benchmark_group("netlist");
    let spec = itc99::circuit("b12").expect("known");
    g.bench_function("generate_b12_die1", |b| {
        b.iter(|| itc99::generate_die(&spec.dies[1]))
    });
    let die = medium_die();
    g.bench_function("topological_order", |b| {
        b.iter(|| traverse::combinational_order(&die))
    });
    g.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition");
    let flat = itc99::generate_flat("bench", 1500, 120, 16, 16, 3);
    let spec = PartitionSpec::new(4);
    g.bench_function("fm_4way_1500", |b| b.iter(|| fm::partition(&flat, &spec, 7)));
    g.bench_function("level_4way_1500", |b| b.iter(|| level::partition(&flat, &spec)));
    g.bench_function("random_4way_1500", |b| {
        b.iter(|| rpart::partition(&flat, &spec, 7))
    });
    g.finish();
}

fn bench_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement");
    g.sample_size(10);
    let die = medium_die();
    let config = PlaceConfig::default();
    g.bench_function("anneal_b12_die1", |b| {
        b.iter_batched(
            || grid::initial(&die, &config),
            |mut p| anneal::refine(&die, &mut p, &config, 1),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_sta(c: &mut Criterion) {
    let mut g = c.benchmark_group("sta");
    let die = medium_die();
    let placement = placed(&die);
    let lib = Library::nangate45_like();
    g.bench_function("analyze_b12_die1", |b| {
        b.iter(|| analyze(&die, &placement, &lib, &StaConfig::relaxed()))
    });
    g.finish();
}

fn bench_atpg(c: &mut Criterion) {
    let mut g = c.benchmark_group("atpg");
    g.sample_size(10);
    let die = medium_die();
    let access = TestAccess::full_scan(&die);
    let list = FaultList::collapsed(&die);
    g.bench_function("faultsim_64_patterns", |b| {
        let mut fs = FaultSimulator::new(&die);
        let patterns: Vec<Pattern> = (0..64)
            .map(|i| Pattern {
                bits: (0..access.width()).map(|k| (i + k) % 3 == 0).collect(),
            })
            .collect();
        let alive = vec![true; list.len()];
        b.iter(|| fs.simulate_batch(&die, &access, &patterns, &list.faults, &alive))
    });
    g.bench_function("stuck_at_atpg_fast", |b| {
        b.iter(|| run_stuck_at(&die, &access, &AtpgConfig::fast()))
    });
    g.finish();
}

fn bench_wcm(c: &mut Criterion) {
    let mut g = c.benchmark_group("wcm");
    let die = medium_die();
    let placement = placed(&die);
    let lib = Library::nangate45_like();
    let report = analyze(&die, &placement, &lib, &StaConfig::relaxed());
    let probe = StructuralProbe::default();
    let th = Thresholds::area_optimized(&lib);
    let ffs = die.flip_flops();
    let tsvs = die.inbound_tsvs();

    // Ablation: the paper's accurate timing model vs Agrawal's
    // capacitance-only model, at graph-construction time.
    for (label, include_wire) in [("graph_accurate", true), ("graph_cap_only", false)] {
        let model = TimingModel::new(&die, &placement, &lib, &report, &report, include_wire);
        g.bench_function(label, |b| {
            b.iter(|| graph::build(&model, &th, &probe, &ffs, &tsvs, ReuseKind::Inbound))
        });
    }

    let model = TimingModel::new(&die, &placement, &lib, &report, &report, true);
    let built = graph::build(&model, &th, &probe, &ffs, &tsvs, ReuseKind::Inbound);
    g.bench_function("clique_partition", |b| {
        b.iter(|| clique::partition(&built, &model, &th, MergePolicy::Accurate))
    });
    g.finish();
}

fn bench_flow(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow");
    g.sample_size(10);
    let die = medium_die();
    let placement = placed(&die);
    let lib = Library::nangate45_like();
    for method in [Method::Ours, Method::Agrawal, Method::Li, Method::Naive] {
        g.bench_function(format!("area_{}", method.label()), |b| {
            b.iter(|| {
                run_flow(&die, &placement, &lib, &FlowConfig::area_optimized(method))
                    .expect("flow runs")
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_netlist,
    bench_partition,
    bench_placement,
    bench_sta,
    bench_atpg,
    bench_wcm,
    bench_flow
);
criterion_main!(benches);

//! Process-wide performance-tuning switches.
//!
//! The hot-path caches introduced in DESIGN.md §11 (memoized testability
//! probing, span-clipped cone intersections, incremental clique scoring)
//! all preserve byte-identical outputs, but a reference mode that bypasses
//! them is needed twice: the equivalence sweep proves optimized == plain,
//! and the bench perf probe measures the work-counter reduction against
//! the unoptimized algorithm on the same binary.
//!
//! `PREBOND3D_NO_CACHE=1` turns every such cache off. Tests and the bench
//! probe flip the switch programmatically via [`force_no_cache`] (env vars
//! are process-global and racy under the parallel test harness), following
//! the same override-beats-environment pattern as
//! `prebond3d_resilience::force_resume`.

use std::sync::atomic::{AtomicI8, Ordering};

static NO_CACHE_OVERRIDE: AtomicI8 = AtomicI8::new(-1);

static LANES_OVERRIDE: AtomicI8 = AtomicI8::new(-1);

/// Are the hot-path caches disabled? `PREBOND3D_NO_CACHE=1` (or a
/// programmatic override installed by [`force_no_cache`], which wins).
pub fn no_cache() -> bool {
    match NO_CACHE_OVERRIDE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => matches!(
            std::env::var("PREBOND3D_NO_CACHE").as_deref(),
            Ok("1") | Ok("on") | Ok("true") | Ok("yes")
        ),
    }
}

/// Convenience inverse of [`no_cache`].
pub fn cache_enabled() -> bool {
    !no_cache()
}

/// Force the no-cache reference mode on/off for this process regardless of
/// the environment; `None` restores env-driven behavior. Test/bench hook.
pub fn force_no_cache(v: Option<bool>) {
    NO_CACHE_OVERRIDE.store(
        match v {
            None => -1,
            Some(false) => 0,
            Some(true) => 1,
        },
        Ordering::Relaxed,
    );
}

/// How many 64-pattern lanes the fault simulator packs into one physical
/// batch: 1, 4, or 8 (64 / 256 / 512 patterns). `PREBOND3D_LANES` selects
/// the width; anything unrecognized falls back to the default of 8. The
/// wide paths are proven byte-identical to the W=1 walk by the
/// lane-equivalence sweeps, so the default favors throughput.
///
/// `PREBOND3D_NO_CACHE=1` (the straight-line reference mode) always forces
/// W=1 — the oracle must stay the unmodified narrow walk.
pub fn lanes() -> usize {
    if no_cache() {
        return 1;
    }
    let raw = match LANES_OVERRIDE.load(Ordering::Relaxed) {
        -1 => std::env::var("PREBOND3D_LANES")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(8),
        v => v as usize,
    };
    match raw {
        1 => 1,
        4 => 4,
        _ => 8,
    }
}

/// Force the lane width for this process regardless of the environment;
/// `None` restores env-driven behavior. Values outside {1, 4, 8} are
/// normalized the same way as the env var. Test/bench hook.
pub fn force_lanes(v: Option<usize>) {
    LANES_OVERRIDE.store(
        match v {
            None => -1,
            Some(1) => 1,
            Some(4) => 4,
            Some(_) => 8,
        },
        Ordering::Relaxed,
    );
}

/// Serializes unit tests that flip the process-global override.
#[cfg(test)]
pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_beats_environment() {
        let _l = TEST_LOCK.lock().unwrap();
        force_no_cache(Some(true));
        assert!(no_cache());
        assert!(!cache_enabled());
        force_no_cache(Some(false));
        assert!(!no_cache());
        assert!(cache_enabled());
        force_no_cache(None);
    }

    #[test]
    fn lane_override_normalizes_and_yields_to_no_cache() {
        let _l = TEST_LOCK.lock().unwrap();
        force_lanes(Some(4));
        assert_eq!(lanes(), 4);
        force_lanes(Some(1));
        assert_eq!(lanes(), 1);
        force_lanes(Some(3)); // out-of-band widths normalize to the widest
        assert_eq!(lanes(), 8);
        // The no-cache reference mode is defined as the W=1 oracle.
        force_no_cache(Some(true));
        assert_eq!(lanes(), 1);
        force_no_cache(None);
        force_lanes(None);
    }
}

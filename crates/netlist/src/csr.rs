//! Compressed sparse row (CSR) adjacency.
//!
//! The sharing graph's neighbor lists used to live in a `Vec<Vec<usize>>`
//! — one heap allocation per node and eight bytes per edge endpoint. The
//! CSR layout packs every neighbor list into one flat `u32` arena indexed
//! by a per-node offset table: two allocations total, half the bytes per
//! endpoint, and neighbor iteration is a contiguous slice scan. Node
//! counts are bounded by gate counts (well under `u32::MAX`), so `u32`
//! indices are safe.

/// Immutable compressed-sparse-row adjacency over `0..len()` nodes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Csr {
    /// `offsets[i]..offsets[i + 1]` indexes node `i`'s slice of `edges`.
    offsets: Vec<u32>,
    /// Flat neighbor arena.
    edges: Vec<u32>,
}

impl Csr {
    /// Build from a directed arc list. Each `(src, dst)` arc appends `dst`
    /// to `src`'s neighbor slice; arcs sharing a source keep their relative
    /// order (the fill is a stable counting sort), so callers that push
    /// arcs in sorted order get sorted neighbor slices for free. For an
    /// undirected graph, push both `(a, b)` and `(b, a)`.
    ///
    /// # Panics
    ///
    /// Panics if any arc endpoint is `>= nodes`.
    pub fn from_arcs(nodes: usize, arcs: &[(u32, u32)]) -> Self {
        let mut offsets = vec![0u32; nodes + 1];
        for &(src, dst) in arcs {
            assert!(
                (src as usize) < nodes && (dst as usize) < nodes,
                "csr arc ({src}, {dst}) out of range {nodes}"
            );
            offsets[src as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut edges = vec![0u32; arcs.len()];
        let mut cursor: Vec<u32> = offsets[..nodes].to_vec();
        for &(src, dst) in arcs {
            let c = &mut cursor[src as usize];
            edges[*c as usize] = dst;
            *c += 1;
        }
        Csr { offsets, edges }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of stored arcs (twice the edge count for an
    /// undirected graph built with both arc directions).
    pub fn arc_count(&self) -> usize {
        self.edges.len()
    }

    /// Neighbor slice of node `i` — a borrowed view into the flat arena,
    /// so callers never clone a row to iterate it.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Out-degree of node `i` in O(1).
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterate every stored `(src, dst)` arc in node order.
    pub fn arcs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.len()).flat_map(move |i| self.neighbors(i).iter().map(move |&dst| (i as u32, dst)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_from_arcs_preserving_order() {
        let arcs = [(0u32, 2u32), (0, 1), (2, 0), (1, 0)];
        let g = Csr::from_arcs(3, &arcs);
        assert_eq!(g.len(), 3);
        assert_eq!(g.arc_count(), 4);
        // Per-source order is preserved: node 0 pushed 2 before 1.
        assert_eq!(g.neighbors(0), &[2, 1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn empty_and_isolated_nodes() {
        let g = Csr::from_arcs(0, &[]);
        assert!(g.is_empty());
        let g = Csr::from_arcs(4, &[(1, 3), (3, 1)]);
        assert_eq!(g.neighbors(0), &[] as &[u32]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn arc_iterator_visits_everything_in_node_order() {
        let arcs = [(2u32, 0u32), (0, 1), (0, 2), (1, 0)];
        let g = Csr::from_arcs(3, &arcs);
        let got: Vec<(u32, u32)> = g.arcs().collect();
        assert_eq!(got, vec![(0, 1), (0, 2), (1, 0), (2, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_arc_panics() {
        let _ = Csr::from_arcs(2, &[(0, 5)]);
    }
}

//! Incremental netlist construction with automatic name management.

use crate::error::NetlistError;
use crate::gate::{Gate, GateId, GateKind};
use crate::netlist::Netlist;

/// Builder for [`Netlist`], validating arity eagerly and structure on
/// [`NetlistBuilder::finish`].
///
/// # Example
///
/// ```
/// use prebond3d_netlist::{NetlistBuilder, GateKind};
///
/// let mut b = NetlistBuilder::new("mux_demo");
/// let a = b.input("a");
/// let s = b.input("sel");
/// let n = b.gate(GateKind::Not, &[a], "an");
/// let m = b.gate(GateKind::Mux2, &[a, n, s], "m");
/// b.output(m, "y");
/// let netlist = b.finish().expect("valid");
/// assert_eq!(netlist.len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    gates: Vec<Gate>,
    auto_counter: u64,
}

impl NetlistBuilder {
    /// Start building a netlist named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            gates: Vec::new(),
            auto_counter: 0,
        }
    }

    /// Number of gates added so far.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` when nothing has been added yet.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    fn push(&mut self, gate: Gate) -> GateId {
        let id = GateId(self.gates.len() as u32);
        self.gates.push(gate);
        id
    }

    /// A fresh name with the given prefix, guaranteed unique among
    /// auto-generated names.
    pub fn fresh_name(&mut self, prefix: &str) -> String {
        let n = self.auto_counter;
        self.auto_counter += 1;
        format!("{prefix}_{n}")
    }

    /// Add a gate of `kind` driven by `inputs`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match `kind.arity()`; arity is a
    /// programming error, not an input-data error.
    pub fn gate(&mut self, kind: GateKind, inputs: &[GateId], name: impl Into<String>) -> GateId {
        assert_eq!(
            inputs.len(),
            kind.arity(),
            "gate kind {kind} expects {} inputs, got {}",
            kind.arity(),
            inputs.len()
        );
        self.push(Gate::new(name, kind, inputs.to_vec()))
    }

    /// Add a gate with an auto-generated name.
    pub fn gate_auto(&mut self, kind: GateKind, inputs: &[GateId]) -> GateId {
        let name = self.fresh_name(kind.mnemonic());
        self.gate(kind, inputs, name)
    }

    /// Add a primary input.
    pub fn input(&mut self, name: impl Into<String>) -> GateId {
        self.gate(GateKind::Input, &[], name)
    }

    /// Add a primary output marker driven by `signal`.
    pub fn output(&mut self, signal: GateId, name: impl Into<String>) -> GateId {
        self.gate(GateKind::Output, &[signal], name)
    }

    /// Add a D flip-flop with data input `d`.
    pub fn dff(&mut self, d: GateId, name: impl Into<String>) -> GateId {
        self.gate(GateKind::Dff, &[d], name)
    }

    /// Add a scan flip-flop with data input `d`.
    pub fn scan_dff(&mut self, d: GateId, name: impl Into<String>) -> GateId {
        self.gate(GateKind::ScanDff, &[d], name)
    }

    /// Add an inbound TSV endpoint (die input through a TSV).
    pub fn tsv_in(&mut self, name: impl Into<String>) -> GateId {
        self.gate(GateKind::TsvIn, &[], name)
    }

    /// Add an outbound TSV endpoint (die output through a TSV) driven by
    /// `signal`.
    pub fn tsv_out(&mut self, signal: GateId, name: impl Into<String>) -> GateId {
        self.gate(GateKind::TsvOut, &[signal], name)
    }

    /// Validate and produce the [`Netlist`].
    ///
    /// # Errors
    ///
    /// Returns an error if any structural invariant is violated; see
    /// [`Netlist::from_gates`].
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        Netlist::from_gates(self.name, self.gates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_counter_with_feedback() {
        // 1-bit toggle: q = dff(not q)
        let mut b = NetlistBuilder::new("toggle");
        // Flip-flop input is not known yet; build with placeholder then fix
        // by constructing in dependency-free order: builder ids are dense,
        // so reserve the inverter after the dff by referencing forward.
        // Instead: dff referencing the not-gate that comes later is allowed
        // because validation happens at finish() and sequential edges are
        // cut. GateId is just an index, so create dff after not:
        let pi = b.input("seed");
        let x = b.gate(GateKind::Xor, &[pi, pi], "zero");
        let q = b.dff(x, "q_tmp"); // temporary wiring
        let nq = b.gate(GateKind::Not, &[q], "nq");
        // Rewire by rebuilding: production code uses edit::rewire; the
        // builder test just checks the simple path compiles and validates.
        b.output(nq, "out");
        let n = b.finish().unwrap();
        assert_eq!(n.flip_flops().len(), 1);
    }

    #[test]
    fn fresh_names_are_unique() {
        let mut b = NetlistBuilder::new("t");
        let n1 = b.fresh_name("x");
        let n2 = b.fresh_name("x");
        assert_ne!(n1, n2);
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn panics_on_bad_arity() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        b.gate(GateKind::And, &[a], "bad");
    }

    #[test]
    fn tsv_helpers() {
        let mut b = NetlistBuilder::new("t");
        let ti = b.tsv_in("ti0");
        let g = b.gate(GateKind::Buf, &[ti], "g");
        b.tsv_out(g, "to0");
        let n = b.finish().unwrap();
        assert_eq!(n.inbound_tsvs().len(), 1);
        assert_eq!(n.outbound_tsvs().len(), 1);
    }
}

//! Deterministic synthetic ITC'99-style benchmark generation.
//!
//! The paper evaluates on six ITC'99 circuits (b11, b12, b18, b20, b21,
//! b22), each synthesized with a 45 nm library and partitioned into four
//! dies by the 3D-Craft flow; its Table II publishes the per-die statistics
//! (#scan flip-flops, #gates, #inbound TSVs, #outbound TSVs).
//!
//! We cannot run Design Compiler or 3D-Craft, so this module substitutes a
//! **deterministic synthetic generator**: for every die it produces a random
//! gate-level netlist whose population counts match Table II exactly and
//! whose connectivity mimics a synthesized circuit (locality-biased fan-in
//! selection, realistic gate-kind mix, every signal observable). The WCM
//! algorithms consume only graph structure — cones, distances, counts — so
//! matching the published statistics reproduces the problem instances the
//! paper solved, up to the (unavailable) exact logic functions.
//!
//! All generation is seeded; the same [`DieSpec`] always yields the same
//! netlist.

use prebond3d_obs as obs;
use prebond3d_rng::StdRng;

use crate::gate::{Gate, GateId, GateKind};
use crate::netlist::Netlist;

/// Parameters of one synthetic die netlist (one row of Table II).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DieSpec {
    /// Die netlist name, e.g. `b12_die1`.
    pub name: String,
    /// Number of scan flip-flops.
    pub scan_flip_flops: usize,
    /// Number of combinational gates.
    pub gates: usize,
    /// Number of inbound TSV endpoints.
    pub inbound_tsvs: usize,
    /// Number of outbound TSV endpoints.
    pub outbound_tsvs: usize,
    /// Number of primary inputs (pads on this die).
    pub primary_inputs: usize,
    /// Number of primary outputs (pads on this die).
    pub primary_outputs: usize,
    /// RNG seed; generation is fully deterministic given the spec.
    pub seed: u64,
}

/// A full benchmark circuit: a name and its four die specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitSpec {
    /// Benchmark name (`b11` … `b22`).
    pub name: &'static str,
    /// Per-die parameters, index = die number.
    pub dies: Vec<DieSpec>,
}

/// The six benchmark circuits evaluated in the paper, in paper order.
pub const CIRCUIT_NAMES: [&str; 6] = ["b11", "b12", "b18", "b20", "b21", "b22"];

/// Table II rows: `(scan_ffs, gates, inbound, outbound)` for 4 dies each,
/// plus the real ITC'99 circuit-level PI/PO counts which we spread across
/// dies (Table II does not list per-die pads).
type Table2Row = (
    &'static str,
    [(usize, usize, usize, usize); 4],
    usize,
    usize,
);

const TABLE2: [Table2Row; 6] = [
    (
        "b11",
        [
            (14, 120, 14, 16),
            (15, 234, 27, 43),
            (3, 229, 38, 38),
            (9, 148, 23, 11),
        ],
        7,
        6,
    ),
    (
        "b12",
        [
            (7, 304, 23, 27),
            (18, 397, 41, 41),
            (45, 344, 23, 42),
            (51, 317, 25, 5),
        ],
        5,
        6,
    ),
    (
        "b18",
        [
            (515, 22934, 772, 733),
            (1033, 26698, 1561, 1875),
            (833, 23575, 1732, 1797),
            (641, 20825, 810, 771),
        ],
        36,
        23,
    ),
    (
        "b20",
        [
            (180, 6937, 251, 363),
            (49, 8603, 720, 780),
            (118, 8101, 740, 778),
            (83, 7325, 408, 235),
        ],
        32,
        22,
    ),
    (
        "b21",
        [
            (196, 6200, 264, 328),
            (113, 9172, 836, 775),
            (69, 9093, 837, 895),
            (52, 6402, 368, 343),
        ],
        32,
        22,
    ),
    (
        "b22",
        [
            (225, 9427, 499, 483),
            (201, 12726, 1006, 1065),
            (181, 13075, 1031, 1064),
            (6, 11358, 511, 481),
        ],
        32,
        22,
    ),
];

/// The [`CircuitSpec`] for a named benchmark, or `None` for an unknown name.
pub fn circuit(name: &str) -> Option<CircuitSpec> {
    let (cname, rows, pis, pos) = TABLE2.iter().find(|(n, ..)| *n == name)?;
    let dies = rows
        .iter()
        .enumerate()
        .map(|(die, &(ffs, gates, inbound, outbound))| DieSpec {
            name: format!("{cname}_die{die}"),
            scan_flip_flops: ffs,
            gates,
            inbound_tsvs: inbound,
            outbound_tsvs: outbound,
            primary_inputs: split_pads(*pis, die),
            primary_outputs: split_pads(*pos, die),
            seed: seed_for(cname, die),
        })
        .collect();
    Some(CircuitSpec { name: cname, dies })
}

/// All six benchmark circuits in paper order.
pub fn all_circuits() -> Vec<CircuitSpec> {
    CIRCUIT_NAMES
        .iter()
        .map(|n| circuit(n).expect("known name"))
        .collect()
}

/// Spread `total` pads over 4 dies: die `i` gets the i-th quarter, with the
/// remainder going to the earliest dies. Every die keeps at least one pad.
fn split_pads(total: usize, die: usize) -> usize {
    let base = total / 4;
    let extra = usize::from(die < total % 4);
    (base + extra).max(1)
}

/// A stable, human-reproducible seed per (circuit, die): FNV-1a over the
/// name so seeds do not collide across benchmarks.
fn seed_for(circuit: &str, die: usize) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in circuit.bytes().chain([b'/', die as u8]) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Arity class of the next gate: 1-input (9 %), 2-input (86 %), mux (5 %) —
/// approximating a 45 nm synthesis mix.
fn random_arity(rng: &mut StdRng) -> usize {
    match rng.gen_range(0..100u32) {
        0..=8 => 1,
        9..=94 => 2,
        _ => 3,
    }
}

/// Output signal probability of `kind` given input 1-probabilities,
/// under an independence assumption.
fn output_probability(kind: GateKind, p: &[f64]) -> f64 {
    match kind {
        GateKind::Buf => p[0],
        GateKind::Not => 1.0 - p[0],
        GateKind::And => p[0] * p[1],
        GateKind::Nand => 1.0 - p[0] * p[1],
        GateKind::Or => 1.0 - (1.0 - p[0]) * (1.0 - p[1]),
        GateKind::Nor => (1.0 - p[0]) * (1.0 - p[1]),
        GateKind::Xor => p[0] * (1.0 - p[1]) + p[1] * (1.0 - p[0]),
        GateKind::Xnor => 1.0 - (p[0] * (1.0 - p[1]) + p[1] * (1.0 - p[0])),
        GateKind::Mux2 => p[0] * (1.0 - p[2]) + p[1] * p[2],
        _ => 0.5,
    }
}

/// Pick a gate kind for the given fan-in probabilities, preferring kinds
/// whose output probability stays away from the 0/1 rails. Probability
/// drift toward constants is the dominant source of *redundant* (untestable)
/// faults in naive random netlists; real synthesized logic is
/// probability-balanced, and this keeps the synthetic instances in the same
/// testability regime.
fn random_kind_balanced(rng: &mut StdRng, p: &[f64]) -> GateKind {
    let candidates: &[GateKind] = match p.len() {
        1 => &[GateKind::Not, GateKind::Not, GateKind::Buf],
        2 => &[
            GateKind::Nand,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Nor,
            GateKind::And,
            GateKind::And,
            GateKind::Or,
            GateKind::Or,
            GateKind::Xor,
            GateKind::Xnor,
        ],
        _ => &[GateKind::Mux2],
    };
    // Weighted draw with rejection while the output would be too biased.
    for _ in 0..6 {
        let kind = candidates[rng.gen_range(0..candidates.len())];
        let q = output_probability(kind, p);
        if (0.15..=0.85).contains(&q) {
            return kind;
        }
    }
    // Fall back to the candidate closest to probability 0.5.
    *candidates
        .iter()
        .min_by(|a, b| {
            let da = (output_probability(**a, p) - 0.5).abs();
            let db = (output_probability(**b, p) - 0.5).abs();
            da.partial_cmp(&db).expect("finite probabilities")
        })
        .expect("non-empty candidates")
}

/// Generate the synthetic netlist for one die.
///
/// Population guarantee: the produced netlist has **exactly**
/// `spec.scan_flip_flops` scan FFs, `spec.gates` combinational gates,
/// `spec.inbound_tsvs`/`spec.outbound_tsvs` TSV endpoints and
/// `spec.primary_inputs`/`spec.primary_outputs` pads.
///
/// Structural properties:
///
/// * acyclic combinational logic (construction orders gate inputs backward),
/// * locality-biased fan-in so nearby logic shares cones while distant logic
///   does not — the property the paper's overlapped-cone analysis probes,
/// * every source (PI, inbound TSV, scan-FF output) drives at least one
///   gate, and every generated signal reaches at least one sink (FF D pin,
///   outbound TSV or primary output), so the ATPG engine can observe the
///   whole die.
///
/// # Panics
///
/// Panics if `spec.gates` is too small to absorb the die's sources
/// (needs roughly `sources/2` gates); all Table II rows satisfy this.
pub fn generate_die(spec: &DieSpec) -> Netlist {
    let _span = obs::span("generate_die");
    // Chaos site: stands in for a corrupt benchmark file — the unit that
    // hits it must fail in isolation, not take down the sweep.
    prebond3d_resilience::chaos::maybe_panic("netlist.load");
    let mut rng = StdRng::seed_from_u64(spec.seed);

    let n_src = spec.primary_inputs + spec.inbound_tsvs + spec.scan_flip_flops;
    assert!(
        spec.gates >= n_src / 2 + 4,
        "die `{}`: {} gates cannot absorb {} sources",
        spec.name,
        spec.gates,
        n_src
    );

    let mut gates: Vec<Gate> =
        Vec::with_capacity(n_src + spec.gates + spec.outbound_tsvs + spec.primary_outputs);

    // --- Sources ------------------------------------------------------
    for i in 0..spec.primary_inputs {
        gates.push(Gate::new(format!("pi{i}"), GateKind::Input, vec![]));
    }
    for i in 0..spec.inbound_tsvs {
        gates.push(Gate::new(format!("tsv_in{i}"), GateKind::TsvIn, vec![]));
    }
    // Scan FFs: D pins are wired after logic generation; placeholder id 0
    // is always valid (there is at least one primary input).
    let ff_base = gates.len();
    for i in 0..spec.scan_flip_flops {
        gates.push(Gate::new(
            format!("sff{i}"),
            GateKind::ScanDff,
            vec![GateId(0)],
        ));
    }
    let source_count = gates.len();

    // --- Combinational logic -------------------------------------------
    // `signals` = ids usable as fan-in. `consumed[i]` tracks whether signal
    // i already drives something, to guarantee full controllability use and
    // observability.
    let mut consumed = vec![false; source_count];
    // Sources not yet driving anything, drained first.
    let mut pending: Vec<u32> = (0..source_count as u32).collect();
    // Shuffle so the pending queue does not impose source-kind ordering.
    for i in (1..pending.len()).rev() {
        let j = rng.gen_range(0..=i);
        pending.swap(i, j);
    }

    let pick_input = |rng: &mut StdRng, pending: &mut Vec<u32>, current_len: usize| -> GateId {
        // Prefer a source that nothing consumes yet; otherwise pick with a
        // strong locality bias: 90 % from a recent window, 10 % uniform.
        // Synthesized circuits are modular — cones of unrelated registers
        // and TSVs rarely overlap — and the window keeps the synthetic
        // cones similarly narrow, which the overlapped-cone experiments
        // (Table V, Fig. 7) depend on.
        let idx = if let Some(id) = pending.pop() {
            id as usize
        } else if rng.gen_bool(0.9) && current_len > 8 {
            let window = (current_len / 6).max(16).min(current_len);
            rng.gen_range(current_len - window..current_len)
        } else {
            rng.gen_range(0..current_len)
        };
        GateId(idx as u32)
    };

    // Number of sink pins available to absorb dangling signals later.
    let n_sinks = spec.scan_flip_flops + spec.outbound_tsvs + spec.primary_outputs;
    // Dangling = signals nothing consumes yet. Tracked so the tail of the
    // gate budget can be spent folding dangling signals together
    // ("reduction mode"), guaranteeing every cone reaches a sink — without
    // this, unobservable logic makes large fault populations untestable.
    let mut dangling_count = source_count;
    // Lazy stacks of dangling candidates: `newest` is pushed as signals are
    // created (popped from the top), `oldest` advances a forward cursor.
    // Both skip already-consumed entries lazily, keeping picks amortized
    // O(1) even for the 27k-gate b18 dies.
    let mut newest_stack: Vec<u32> = (0..source_count as u32).collect();
    let mut old_cursor: usize = 0;
    // Estimated 1-probability per signal (independence assumption); keeps
    // the kind selection away from constant-drift.
    let mut prob: Vec<f64> = vec![0.5; source_count];

    for i in 0..spec.gates {
        let remaining = spec.gates - i;
        let reduction_mode = dangling_count > n_sinks && dangling_count - n_sinks + 1 >= remaining;
        let len = gates.len();

        let pop_newest = |consumed: &[bool], stack: &mut Vec<u32>| -> Option<GateId> {
            while let Some(&top) = stack.last() {
                if consumed[top as usize] {
                    stack.pop();
                } else {
                    stack.pop();
                    return Some(GateId(top));
                }
            }
            None
        };
        let pop_oldest = |consumed: &[bool], cursor: &mut usize| -> Option<GateId> {
            while *cursor < consumed.len() {
                if consumed[*cursor] {
                    *cursor += 1;
                } else {
                    let id = GateId(*cursor as u32);
                    *cursor += 1;
                    return Some(id);
                }
            }
            None
        };

        let (kind, inputs) = if reduction_mode && dangling_count >= 2 {
            // Fold two dangling signals: net dangling change is −1. XOR is
            // heavily preferred because parity collection never blocks
            // observability (a synthesized circuit's test compactor has the
            // same property); AND/OR folding of correlated deep signals
            // would manufacture redundant logic that no real netlist has.
            // Fold one old and one recent dangling signal to avoid chains
            // of tightly correlated neighbours.
            let a = pop_oldest(&consumed, &mut old_cursor).expect("≥2 dangling");
            consumed[a.index()] = true; // hide from the newest pick
            let b = pop_newest(&consumed, &mut newest_stack).expect("≥2 dangling");
            consumed[a.index()] = false; // restore; accounting happens below
            let kind = if rng.gen_bool(0.7) {
                GateKind::Xor
            } else {
                random_kind_balanced(&mut rng, &[prob[a.index()], prob[b.index()]])
            };
            (kind, vec![a, b])
        } else {
            let arity = random_arity(&mut rng);
            let mut inputs: Vec<GateId> = (0..arity)
                .map(|_| pick_input(&mut rng, &mut pending, len))
                .collect();
            // Identical fan-ins (e.g. xor(x, x) ≡ 0) manufacture redundant
            // faults; re-draw once to keep them rare like in real netlists.
            if inputs.len() >= 2 && inputs[0] == inputs[1] {
                inputs[1] = pick_input(&mut rng, &mut pending, len);
            }
            // Once the dangling population has reached the sink budget it
            // must never grow, or the final deficit can exceed the sinks:
            // force the first fan-in to consume a dangling signal.
            if dangling_count >= n_sinks && inputs.iter().all(|&x| consumed[x.index()]) {
                if let Some(d) = pop_newest(&consumed, &mut newest_stack) {
                    inputs[0] = d;
                }
            }
            let ps: Vec<f64> = inputs.iter().map(|&x| prob[x.index()]).collect();
            (random_kind_balanced(&mut rng, &ps), inputs)
        };
        for &input in &inputs {
            if !consumed[input.index()] {
                consumed[input.index()] = true;
                dangling_count -= 1;
            }
        }
        let ps: Vec<f64> = inputs.iter().map(|&x| prob[x.index()]).collect();
        prob.push(output_probability(kind, &ps));
        gates.push(Gate::new(format!("g{i}"), kind, inputs));
        newest_stack.push(gates.len() as u32 - 1);
        consumed.push(false);
        dangling_count += 1;
    }

    // --- Sinks -----------------------------------------------------------
    // Dangling logic signals (nothing consumes them yet) are routed to sink
    // pins first so everything stays observable. Sink pin order: FF D pins,
    // outbound TSVs, primary outputs.
    let mut dangling: Vec<u32> = consumed
        .iter()
        .enumerate()
        .filter(|&(i, &c)| !c && gates[i].kind != GateKind::Output)
        .map(|(i, _)| i as u32)
        .collect();
    // Deepest (most recently generated) first: they have the longest cones
    // and make the most interesting TSV drivers.
    dangling.reverse();

    let total_logic = gates.len();
    // Reduction mode guarantees `dangling.len() <= n_sinks`; every dangling
    // signal gets its own sink pin, surplus pins sample random logic.
    debug_assert!(
        dangling.len() <= n_sinks,
        "die `{}`: {} dangling > {} sinks",
        spec.name,
        dangling.len(),
        n_sinks
    );
    let mut sink_feed: Vec<GateId> = Vec::with_capacity(n_sinks);
    for _ in 0..n_sinks {
        let id = match dangling.pop() {
            Some(id) => GateId(id),
            // Fewer dangling than sinks: sample any logic signal.
            None => GateId(rng.gen_range(source_count as u32..total_logic as u32)),
        };
        sink_feed.push(id);
    }
    // Shuffle feeds so FF/TSV/PO roles are not correlated with depth.
    for i in (1..sink_feed.len()).rev() {
        let j = rng.gen_range(0..=i);
        sink_feed.swap(i, j);
    }

    let mut feed = sink_feed.into_iter();
    for i in 0..spec.scan_flip_flops {
        let d = feed.next().expect("sized above");
        gates[ff_base + i].inputs = vec![d];
    }
    for i in 0..spec.outbound_tsvs {
        let d = feed.next().expect("sized above");
        gates.push(Gate::new(format!("tsv_out{i}"), GateKind::TsvOut, vec![d]));
    }
    for i in 0..spec.primary_outputs {
        let d = feed.next().expect("sized above");
        gates.push(Gate::new(format!("po{i}"), GateKind::Output, vec![d]));
    }

    Netlist::from_gates(spec.name.clone(), gates).expect("generator emits valid netlists")
}

/// Generate all four dies of a circuit.
pub fn generate_circuit(spec: &CircuitSpec) -> Vec<Netlist> {
    spec.dies.iter().map(generate_die).collect()
}

/// Generate a *flat* (unpartitioned) synthetic circuit with the given
/// budgets. Used to exercise the partitioning substrate end-to-end, the way
/// the authors ran 3D-Craft on the flat ITC'99 netlists.
pub fn generate_flat(
    name: &str,
    gates: usize,
    flip_flops: usize,
    primary_inputs: usize,
    primary_outputs: usize,
    seed: u64,
) -> Netlist {
    let spec = DieSpec {
        name: name.to_string(),
        scan_flip_flops: flip_flops,
        gates,
        inbound_tsvs: 0,
        outbound_tsvs: 0,
        primary_inputs,
        primary_outputs,
        seed,
    };
    generate_die(&spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> DieSpec {
        DieSpec {
            name: "test_die".into(),
            scan_flip_flops: 12,
            gates: 150,
            inbound_tsvs: 9,
            outbound_tsvs: 11,
            primary_inputs: 4,
            primary_outputs: 3,
            seed: 42,
        }
    }

    #[test]
    fn generation_matches_spec_exactly() {
        let spec = small_spec();
        let n = generate_die(&spec);
        let s = n.stats();
        assert_eq!(s.scan_flip_flops, spec.scan_flip_flops);
        assert_eq!(s.combinational_gates, spec.gates);
        assert_eq!(s.inbound_tsvs, spec.inbound_tsvs);
        assert_eq!(s.outbound_tsvs, spec.outbound_tsvs);
        assert_eq!(s.primary_inputs, spec.primary_inputs);
        assert_eq!(s.primary_outputs, spec.primary_outputs);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = small_spec();
        let a = generate_die(&spec);
        let b = generate_die(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec2 = small_spec();
        spec2.seed = 43;
        assert_ne!(generate_die(&small_spec()), generate_die(&spec2));
    }

    #[test]
    fn every_source_is_consumed() {
        let n = generate_die(&small_spec());
        for (id, gate) in n.iter() {
            if gate.kind.is_source() {
                assert!(
                    !n.fanout(id).is_empty(),
                    "source {} has no fanout",
                    gate.name
                );
            }
        }
    }

    #[test]
    fn table2_rows_are_complete() {
        let circuits = all_circuits();
        assert_eq!(circuits.len(), 6);
        for c in &circuits {
            assert_eq!(c.dies.len(), 4, "{} has 4 dies", c.name);
        }
        // Spot-check published numbers.
        let b12 = circuit("b12").unwrap();
        assert_eq!(b12.dies[1].scan_flip_flops, 18);
        assert_eq!(b12.dies[1].inbound_tsvs, 41);
        assert_eq!(b12.dies[1].outbound_tsvs, 41);
        let b18 = circuit("b18").unwrap();
        assert_eq!(b18.dies[0].gates, 22934);
        assert!(circuit("b99").is_none());
    }

    #[test]
    fn small_benchmark_dies_generate() {
        for cname in ["b11", "b12"] {
            let c = circuit(cname).unwrap();
            for die in &c.dies {
                let n = generate_die(die);
                let s = n.stats();
                assert_eq!(s.scan_flip_flops, die.scan_flip_flops, "{}", die.name);
                assert_eq!(s.combinational_gates, die.gates, "{}", die.name);
                assert_eq!(s.inbound_tsvs, die.inbound_tsvs, "{}", die.name);
                assert_eq!(s.outbound_tsvs, die.outbound_tsvs, "{}", die.name);
            }
        }
    }

    #[test]
    fn flat_circuit_has_no_tsvs() {
        let n = generate_flat("flat", 300, 20, 8, 8, 7);
        let s = n.stats();
        assert_eq!(s.tsvs(), 0);
        assert_eq!(s.combinational_gates, 300);
    }
}

//! Fan-in / fan-out cone computation.
//!
//! The paper's edge-construction rule (Algorithm 1, line 19) admits an edge
//! between a scan flip-flop and a TSV outright when their fan-in/fan-out
//! cones do **not** overlap, and only then falls back to the testability
//! probe. Cones are therefore on the hot path of graph construction; they
//! are represented as [`BitSet`]s over gate ids so overlap tests are a few
//! word-AND operations.

use crate::bitset::BitSet;
use crate::gate::GateId;
use crate::netlist::Netlist;

/// The transitive fan-in cone of `root`, i.e. every gate whose output can
/// combinationally influence `root`'s value.
///
/// Traversal stops at combinational sources (primary inputs, constants,
/// flip-flop outputs, inbound TSVs): the source itself is included, but the
/// logic behind a flip-flop is not (it belongs to the previous cycle).
/// `root` itself is included.
pub fn fanin_cone(netlist: &Netlist, root: GateId) -> BitSet {
    let mut set = BitSet::new(netlist.len());
    let mut stack = vec![root];
    set.insert(root.index());
    while let Some(id) = stack.pop() {
        let gate = netlist.gate(id);
        // Do not cross sequential boundaries except at the root: a flip-flop
        // *root* asks "what feeds my D pin", but a flip-flop found inside
        // the cone is a source and terminates traversal.
        if id != root && gate.kind.is_source() {
            continue;
        }
        for &input in &gate.inputs {
            if set.insert(input.index()) {
                stack.push(input);
            }
        }
    }
    set
}

/// The transitive fan-out cone of `root`, i.e. every gate whose value can be
/// combinationally influenced by `root`'s output.
///
/// Traversal stops at combinational sinks (primary outputs, flip-flop D
/// inputs, outbound TSVs): the sink is included but not crossed. `root`
/// itself is included.
pub fn fanout_cone(netlist: &Netlist, root: GateId) -> BitSet {
    let mut set = BitSet::new(netlist.len());
    let mut stack = vec![root];
    set.insert(root.index());
    while let Some(id) = stack.pop() {
        let gate = netlist.gate(id);
        if id != root && gate.kind.is_sink() {
            continue;
        }
        for &fo in netlist.fanout(id) {
            if set.insert(fo.index()) {
                stack.push(fo);
            }
        }
    }
    set
}

/// Precomputed fan-in and fan-out cones for a set of roots.
///
/// Graph construction queries overlap between every (scan-FF, TSV) and
/// (TSV, TSV) pair; caching the cones turns the quadratic pair loop into
/// pure bitset intersections. On top of the raw cones the set caches each
/// cone's non-zero word span and population at compute time, so overlap
/// queries only walk the words where both cones can have bits (DESIGN.md
/// §11) — with `PREBOND3D_NO_CACHE=1` the spans are ignored and every
/// query walks the full word width, the reference mode the equivalence
/// sweep and the bench perf probe compare against. Every word actually
/// examined is tallied in a relaxed atomic, readable via
/// [`Self::word_ops`]; the tally is exact at any thread count because it
/// only ever accumulates.
#[derive(Debug)]
pub struct ConeSet {
    roots: Vec<GateId>,
    fanin: Vec<BitSet>,
    fanout: Vec<BitSet>,
    /// Non-zero word span (inclusive) per cone; never `None` in practice
    /// since every cone contains its root, but stored clipped-empty-safe.
    fanin_span: Vec<(usize, usize)>,
    fanout_span: Vec<(usize, usize)>,
    fanin_pop: Vec<usize>,
    fanout_pop: Vec<usize>,
    index_of: std::collections::HashMap<GateId, usize>,
    /// Captured from [`crate::tuning::cache_enabled`] at compute time.
    use_spans: bool,
    word_ops: std::sync::atomic::AtomicU64,
}

impl Clone for ConeSet {
    fn clone(&self) -> Self {
        ConeSet {
            roots: self.roots.clone(),
            fanin: self.fanin.clone(),
            fanout: self.fanout.clone(),
            fanin_span: self.fanin_span.clone(),
            fanout_span: self.fanout_span.clone(),
            fanin_pop: self.fanin_pop.clone(),
            fanout_pop: self.fanout_pop.clone(),
            index_of: self.index_of.clone(),
            use_spans: self.use_spans,
            word_ops: std::sync::atomic::AtomicU64::new(
                self.word_ops.load(std::sync::atomic::Ordering::Relaxed),
            ),
        }
    }
}

impl ConeSet {
    /// Compute both cones (plus their spans and populations) for each
    /// root in `roots`.
    pub fn compute(netlist: &Netlist, roots: &[GateId]) -> Self {
        let mut index_of = std::collections::HashMap::with_capacity(roots.len());
        let mut fanin = Vec::with_capacity(roots.len());
        let mut fanout = Vec::with_capacity(roots.len());
        for (i, &root) in roots.iter().enumerate() {
            index_of.insert(root, i);
            fanin.push(fanin_cone(netlist, root));
            fanout.push(fanout_cone(netlist, root));
        }
        let span_of = |set: &BitSet| set.nonzero_word_span().unwrap_or((1, 0));
        ConeSet {
            fanin_span: fanin.iter().map(span_of).collect(),
            fanout_span: fanout.iter().map(span_of).collect(),
            fanin_pop: fanin.iter().map(BitSet::count).collect(),
            fanout_pop: fanout.iter().map(BitSet::count).collect(),
            roots: roots.to_vec(),
            fanin,
            fanout,
            index_of,
            use_spans: crate::tuning::cache_enabled(),
            word_ops: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The roots this set was computed for.
    pub fn roots(&self) -> &[GateId] {
        &self.roots
    }

    /// Fan-in cone of `root`, if `root` was in the computed set.
    pub fn fanin(&self, root: GateId) -> Option<&BitSet> {
        self.index_of.get(&root).map(|&i| &self.fanin[i])
    }

    /// Fan-out cone of `root`, if `root` was in the computed set.
    pub fn fanout(&self, root: GateId) -> Option<&BitSet> {
        self.index_of.get(&root).map(|&i| &self.fanout[i])
    }

    /// Cached population of `root`'s fan-in cone.
    pub fn fanin_population(&self, root: GateId) -> Option<usize> {
        self.index_of.get(&root).map(|&i| self.fanin_pop[i])
    }

    /// Cached population of `root`'s fan-out cone.
    pub fn fanout_population(&self, root: GateId) -> Option<usize> {
        self.index_of.get(&root).map(|&i| self.fanout_pop[i])
    }

    /// Bitset words examined by overlap queries so far — the
    /// deterministic work counter behind `graph.cone_word_ops`.
    pub fn word_ops(&self) -> u64 {
        self.word_ops.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Span-clipped overlap test over one cone family. In span mode only
    /// the words inside both cones' non-zero spans are walked (zero when
    /// the spans are disjoint); in the no-cache reference mode the full
    /// common word width is walked. Both paths return identical answers.
    fn overlap(&self, cones: &[BitSet], spans: &[(usize, usize)], i: usize, j: usize) -> bool {
        use std::sync::atomic::Ordering::Relaxed;
        let (a, b) = (&cones[i], &cones[j]);
        if !self.use_spans {
            let walked = a.words().len().min(b.words().len());
            self.word_ops.fetch_add(walked as u64, Relaxed);
            return a.intersects(b);
        }
        let lo = spans[i].0.max(spans[j].0);
        let hi = spans[i].1.min(spans[j].1);
        if lo > hi {
            return false;
        }
        let walked = (hi + 1).min(a.words().len()).min(b.words().len()) - lo;
        self.word_ops.fetch_add(walked as u64, Relaxed);
        a.intersects_clipped(b, lo, hi)
    }

    /// Span-clipped intersection count over one cone family; same walking
    /// discipline as [`Self::overlap`].
    fn overlap_count(
        &self,
        cones: &[BitSet],
        spans: &[(usize, usize)],
        i: usize,
        j: usize,
    ) -> usize {
        use std::sync::atomic::Ordering::Relaxed;
        let (a, b) = (&cones[i], &cones[j]);
        if !self.use_spans {
            let walked = a.words().len().min(b.words().len());
            self.word_ops.fetch_add(walked as u64, Relaxed);
            return a.intersection_count(b);
        }
        let lo = spans[i].0.max(spans[j].0);
        let hi = spans[i].1.min(spans[j].1);
        if lo > hi {
            return 0;
        }
        let walked = (hi + 1).min(a.words().len()).min(b.words().len()) - lo;
        self.word_ops.fetch_add(walked as u64, Relaxed);
        a.intersection_count_clipped(b, lo, hi)
    }

    /// `true` when the fan-in cones of `a` and `b` share any gate, or
    /// `None` if either root was not in the computed set.
    pub fn try_fanin_overlaps(&self, a: GateId, b: GateId) -> Option<bool> {
        let (&i, &j) = (self.index_of.get(&a)?, self.index_of.get(&b)?);
        Some(self.overlap(&self.fanin, &self.fanin_span, i, j))
    }

    /// `true` when the fan-out cones of `a` and `b` share any gate, or
    /// `None` if either root was not in the computed set.
    pub fn try_fanout_overlaps(&self, a: GateId, b: GateId) -> Option<bool> {
        let (&i, &j) = (self.index_of.get(&a)?, self.index_of.get(&b)?);
        Some(self.overlap(&self.fanout, &self.fanout_span, i, j))
    }

    /// Number of gates shared by the fan-in cones of `a` and `b`, or
    /// `None` if either root was not in the computed set.
    pub fn try_fanin_overlap_count(&self, a: GateId, b: GateId) -> Option<usize> {
        let (&i, &j) = (self.index_of.get(&a)?, self.index_of.get(&b)?);
        Some(self.overlap_count(&self.fanin, &self.fanin_span, i, j))
    }

    /// Number of gates shared by the fan-out cones of `a` and `b`, or
    /// `None` if either root was not in the computed set.
    pub fn try_fanout_overlap_count(&self, a: GateId, b: GateId) -> Option<usize> {
        let (&i, &j) = (self.index_of.get(&a)?, self.index_of.get(&b)?);
        Some(self.overlap_count(&self.fanout, &self.fanout_span, i, j))
    }

    /// The paper's "overlapped fan-in or fan-out cones" predicate
    /// (Algorithm 1 line 19), or `None` if either root was not in the
    /// computed set.
    pub fn try_cones_overlap(&self, a: GateId, b: GateId) -> Option<bool> {
        Some(self.try_fanin_overlaps(a, b)? || self.try_fanout_overlaps(a, b)?)
    }

    /// `true` when the fan-in cones of `a` and `b` share any gate.
    ///
    /// # Panics
    ///
    /// Panics if either root was not in the computed set; callers that
    /// cannot guarantee membership should use [`Self::try_fanin_overlaps`].
    pub fn fanin_overlaps(&self, a: GateId, b: GateId) -> bool {
        self.try_fanin_overlaps(a, b)
            .expect("both overlap roots must be in the computed cone set")
    }

    /// `true` when the fan-out cones of `a` and `b` share any gate.
    ///
    /// # Panics
    ///
    /// Panics if either root was not in the computed set; callers that
    /// cannot guarantee membership should use [`Self::try_fanout_overlaps`].
    pub fn fanout_overlaps(&self, a: GateId, b: GateId) -> bool {
        self.try_fanout_overlaps(a, b)
            .expect("both overlap roots must be in the computed cone set")
    }

    /// The paper's "overlapped fan-in or fan-out cones" predicate
    /// (Algorithm 1 line 19): `true` when either cone pair intersects
    /// beyond the trivial case.
    ///
    /// # Panics
    ///
    /// Panics if either root was not in the computed set; callers that
    /// cannot guarantee membership should use [`Self::try_cones_overlap`].
    pub fn cones_overlap(&self, a: GateId, b: GateId) -> bool {
        self.try_cones_overlap(a, b)
            .expect("both overlap roots must be in the computed cone set")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::gate::GateKind;

    /// Two disjoint AND trees and one shared input.
    fn two_trees() -> (Netlist, GateId, GateId, GateId) {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("c");
        let e = b.input("d");
        let g1 = b.gate(GateKind::And, &[a, c], "g1");
        let g2 = b.gate(GateKind::And, &[d, e], "g2");
        let o1 = b.output(g1, "o1");
        let o2 = b.output(g2, "o2");
        let n = b.finish().unwrap();
        let _ = (o1, o2);
        (n, g1, g2, a)
    }

    #[test]
    fn disjoint_cones_do_not_overlap() {
        let (n, g1, g2, _) = two_trees();
        let cones = ConeSet::compute(&n, &[g1, g2]);
        assert!(!cones.fanin_overlaps(g1, g2));
        assert!(!cones.fanout_overlaps(g1, g2));
        assert!(!cones.cones_overlap(g1, g2));
    }

    #[test]
    fn fanin_contains_inputs() {
        let (n, g1, _, a) = two_trees();
        let cone = fanin_cone(&n, g1);
        assert!(cone.contains(a.index()));
        assert!(cone.contains(g1.index()));
        assert_eq!(cone.count(), 3); // a, b, g1
    }

    #[test]
    fn fanout_reaches_outputs() {
        let (n, g1, _, a) = two_trees();
        let cone = fanout_cone(&n, a);
        assert!(cone.contains(g1.index()));
        let o1 = n.find("o1").unwrap();
        assert!(cone.contains(o1.index()));
        assert!(!cone.contains(n.find("g2").unwrap().index()));
    }

    #[test]
    fn cones_stop_at_flip_flops() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, &[a], "g1");
        let q = b.dff(g1, "q");
        let g2 = b.gate(GateKind::Not, &[q], "g2");
        b.output(g2, "o");
        let n = b.finish().unwrap();
        let q_id = n.find("q").unwrap();
        let g2_id = n.find("g2").unwrap();

        // Fan-in of g2 stops at the flip-flop: includes q, not g1 or a.
        let cone = fanin_cone(&n, g2_id);
        assert!(cone.contains(q_id.index()));
        assert!(!cone.contains(n.find("g1").unwrap().index()));

        // Fan-in of the flip-flop itself crosses to its D logic.
        let cone_q = fanin_cone(&n, q_id);
        assert!(cone_q.contains(n.find("g1").unwrap().index()));
        assert!(cone_q.contains(n.find("a").unwrap().index()));

        // Fan-out of g1 stops at the flip-flop.
        let cone_f = fanout_cone(&n, n.find("g1").unwrap());
        assert!(cone_f.contains(q_id.index()));
        assert!(!cone_f.contains(g2_id.index()));
    }

    #[test]
    fn try_variants_return_none_for_unknown_roots() {
        let (n, g1, g2, a) = two_trees();
        let cones = ConeSet::compute(&n, &[g1, g2]);
        assert_eq!(cones.try_fanin_overlaps(g1, a), None);
        assert_eq!(cones.try_fanout_overlaps(a, g2), None);
        assert_eq!(cones.try_cones_overlap(a, a), None);
        assert_eq!(cones.try_cones_overlap(g1, g2), Some(false));
    }

    #[test]
    fn span_mode_and_reference_mode_agree_and_count_work() {
        let _l = crate::tuning::TEST_LOCK.lock().unwrap();
        let (n, g1, g2, _) = two_trees();
        crate::tuning::force_no_cache(Some(false));
        let fast = ConeSet::compute(&n, &[g1, g2]);
        crate::tuning::force_no_cache(Some(true));
        let slow = ConeSet::compute(&n, &[g1, g2]);
        crate::tuning::force_no_cache(None);

        assert_eq!(
            fast.try_cones_overlap(g1, g2),
            slow.try_cones_overlap(g1, g2)
        );
        assert_eq!(
            fast.try_fanin_overlap_count(g1, g2),
            slow.try_fanin_overlap_count(g1, g2)
        );
        assert_eq!(
            fast.try_fanout_overlap_count(g1, g2),
            slow.try_fanout_overlap_count(g1, g2)
        );
        // The reference mode walks at least as many words.
        assert!(fast.word_ops() <= slow.word_ops());
        assert!(slow.word_ops() > 0);
        // Populations are cached at compute time.
        assert_eq!(fast.fanin_population(g1), Some(3)); // a, b, g1
        assert_eq!(fast.fanin_population(g1), slow.fanin_population(g1));
        assert_eq!(fast.fanout_population(g2), slow.fanout_population(g2));
        // Cloning carries the tally forward.
        assert_eq!(fast.clone().word_ops(), fast.word_ops());
    }

    #[test]
    fn shared_input_overlaps_fanin() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("c");
        let g1 = b.gate(GateKind::And, &[a, c], "g1");
        let g2 = b.gate(GateKind::And, &[a, d], "g2");
        b.output(g1, "o1");
        b.output(g2, "o2");
        let n = b.finish().unwrap();
        let cones = ConeSet::compute(&n, &[g1, g2]);
        assert!(cones.fanin_overlaps(g1, g2));
        assert!(cones.cones_overlap(g1, g2));
    }
}

//! Netlist editing and cleanup passes.
//!
//! Small structural transforms used around DFT insertion and benchmark
//! preparation:
//!
//! * [`rewire`] — redirect every consumer of one signal to another,
//! * [`propagate_constants`] — fold logic fed by `const0`/`const1`
//!   (e.g. specialise a testable netlist for one value of `test_en`),
//! * [`sweep_dead`] — remove gates that can no longer reach any sink.
//!
//! All passes return fresh, revalidated netlists; ids are *not* preserved
//! across [`sweep_dead`] (a mapping is returned instead).

use std::collections::HashMap;

use crate::gate::{Gate, GateId, GateKind};
use crate::netlist::Netlist;
use crate::NetlistError;

/// Redirect every consumer of `from` to `to`.
///
/// # Errors
///
/// Propagates validation errors (e.g. if the rewiring creates a
/// combinational cycle).
pub fn rewire(netlist: &Netlist, from: GateId, to: GateId) -> Result<Netlist, NetlistError> {
    let gates: Vec<Gate> = netlist
        .iter()
        .map(|(_, g)| {
            let mut g = g.clone();
            for input in &mut g.inputs {
                if *input == from {
                    *input = to;
                }
            }
            g
        })
        .collect();
    Netlist::from_gates(netlist.name().to_string(), gates)
}

/// Constant value of a gate output, if statically known.
fn const_value(values: &[Option<bool>], id: GateId) -> Option<bool> {
    values[id.index()]
}

/// Fold constants through the combinational logic: every gate whose output
/// is statically implied by `const0`/`const1` sources (plus the optional
/// `forced` assignments, e.g. `test_en = 1`) is replaced by a constant
/// source; the remaining structure is untouched.
///
/// Returns the new netlist; gate count and ids are preserved (constant
/// gates are re-kinded in place), so downstream id-based bookkeeping keeps
/// working.
///
/// # Errors
///
/// Propagates validation errors.
pub fn propagate_constants(
    netlist: &Netlist,
    forced: &[(GateId, bool)],
) -> Result<Netlist, NetlistError> {
    let order = crate::traverse::combinational_order(netlist);
    let mut values: Vec<Option<bool>> = vec![None; netlist.len()];
    for &(id, v) in forced {
        // A forced id outside the netlist is a caller bug, but one that is
        // easy to hit when ids from a pre-edit netlist leak through; report
        // it as a dangling reference instead of panicking on the index.
        if netlist.get(id).is_none() {
            return Err(NetlistError::DanglingInput {
                gate: "<forced assignment>".to_string(),
                input: id,
            });
        }
        values[id.index()] = Some(v);
    }
    for &id in &order {
        if values[id.index()].is_some() {
            continue;
        }
        let gate = netlist.gate(id);
        values[id.index()] = match gate.kind {
            GateKind::Const0 => Some(false),
            GateKind::Const1 => Some(true),
            _ if !gate.kind.is_combinational() => None,
            _ => {
                let ins: Vec<Option<bool>> = gate
                    .inputs
                    .iter()
                    .map(|&i| const_value(&values, i))
                    .collect();
                eval_const(gate.kind, &ins)
            }
        };
    }

    let gates: Vec<Gate> = netlist
        .iter()
        .map(|(id, g)| {
            let mut g = g.clone();
            // Sinks and sources keep their role; internal logic with a
            // known value becomes a constant source.
            if g.kind.is_combinational() && !matches!(g.kind, GateKind::Output | GateKind::TsvOut) {
                if let Some(v) = values[id.index()] {
                    g.kind = if v {
                        GateKind::Const1
                    } else {
                        GateKind::Const0
                    };
                    g.inputs.clear();
                }
            }
            g
        })
        .collect();
    Netlist::from_gates(netlist.name().to_string(), gates)
}

/// Three-valued constant evaluation (`None` = unknown).
fn eval_const(kind: GateKind, ins: &[Option<bool>]) -> Option<bool> {
    match kind {
        GateKind::Buf | GateKind::Output | GateKind::TsvOut => ins[0],
        GateKind::Not => ins[0].map(|v| !v),
        GateKind::And => match (ins[0], ins[1]) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        GateKind::Nand => eval_const(GateKind::And, ins).map(|v| !v),
        GateKind::Or => match (ins[0], ins[1]) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        GateKind::Nor => eval_const(GateKind::Or, ins).map(|v| !v),
        GateKind::Xor => match (ins[0], ins[1]) {
            (Some(a), Some(b)) => Some(a ^ b),
            _ => None,
        },
        GateKind::Xnor => eval_const(GateKind::Xor, ins).map(|v| !v),
        GateKind::Mux2 => match ins[2] {
            Some(false) => ins[0],
            Some(true) => ins[1],
            None => match (ins[0], ins[1]) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
        },
        _ => None,
    }
}

/// Remove every gate that reaches no sink (primary output, TSV endpoint
/// or flip-flop). Returns the swept netlist and, for each surviving
/// original id, its new id.
///
/// # Errors
///
/// Propagates validation errors.
pub fn sweep_dead(netlist: &Netlist) -> Result<(Netlist, HashMap<GateId, GateId>), NetlistError> {
    // Mark everything that transitively feeds a sink (crossing flip-flops:
    // a gate feeding a flip-flop's D is alive, and the flip-flop's own Q
    // fanout keeps the flip-flop alive).
    let mut alive = vec![false; netlist.len()];
    let mut stack: Vec<GateId> = netlist
        .iter()
        .filter(|(_, g)| matches!(g.kind, GateKind::Output | GateKind::TsvOut))
        .map(|(id, _)| id)
        .collect();
    // Flip-flops stay: they are architectural state.
    stack.extend(netlist.flip_flops());
    for &id in &stack {
        alive[id.index()] = true;
    }
    while let Some(id) = stack.pop() {
        for &input in &netlist.gate(id).inputs {
            if !alive[input.index()] {
                alive[input.index()] = true;
                stack.push(input);
            }
        }
    }
    // Sources stay too (ports must survive even when unconnected).
    for (id, gate) in netlist.iter() {
        if gate.kind.is_source() && !gate.kind.is_sequential() {
            alive[id.index()] = true;
        }
    }

    let mut mapping: HashMap<GateId, GateId> = HashMap::new();
    let mut gates: Vec<Gate> = Vec::new();
    for (id, gate) in netlist.iter() {
        if alive[id.index()] {
            mapping.insert(id, GateId(gates.len() as u32));
            gates.push(gate.clone());
        }
    }
    for gate in &mut gates {
        for input in &mut gate.inputs {
            // Liveness is closed over inputs: every input of a surviving
            // gate was marked alive above, so it must be in the mapping.
            *input = *mapping
                .get(input)
                .expect("sweep keeps live-input closure: inputs of live gates are live");
        }
    }
    let swept = Netlist::from_gates(netlist.name().to_string(), gates)?;
    Ok((swept, mapping))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn rewire_moves_fanout() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let g = b.gate(GateKind::Not, &[a], "g");
        b.output(g, "o");
        let n = b.finish().unwrap();
        let n2 = rewire(&n, a, c).unwrap();
        let g2 = n2.find("g").unwrap();
        assert_eq!(n2.gate(g2).inputs, vec![c]);
        assert!(n2.fanout(a).is_empty());
    }

    #[test]
    fn constants_fold_through_logic() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let zero = b.gate(GateKind::Const0, &[], "zero");
        let g1 = b.gate(GateKind::And, &[a, zero], "g1"); // = 0
        let g2 = b.gate(GateKind::Or, &[g1, a], "g2"); // = a (unknown)
        let g3 = b.gate(GateKind::Nor, &[g1, g1], "g3"); // = 1
        b.output(g2, "o1");
        b.output(g3, "o2");
        let n = b.finish().unwrap();
        let folded = propagate_constants(&n, &[]).unwrap();
        assert_eq!(
            folded.gate(folded.find("g1").unwrap()).kind,
            GateKind::Const0
        );
        assert_eq!(
            folded.gate(folded.find("g3").unwrap()).kind,
            GateKind::Const1
        );
        assert_eq!(folded.gate(folded.find("g2").unwrap()).kind, GateKind::Or);
    }

    #[test]
    fn forced_values_specialize_muxes() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let sel = b.input("test_en");
        let m = b.gate(GateKind::Mux2, &[a, c, sel], "m");
        b.output(m, "o");
        let n = b.finish().unwrap();
        // With test_en forced to 0 the mux is NOT constant (it follows a),
        // so it must survive; but with both data constant it would fold.
        let folded = propagate_constants(&n, &[(sel, false)]).unwrap();
        assert_eq!(folded.gate(folded.find("m").unwrap()).kind, GateKind::Mux2);
        // Force `a` too: now the mux folds to a's value.
        let folded2 = propagate_constants(&n, &[(sel, false), (a, true)]).unwrap();
        assert_eq!(
            folded2.gate(folded2.find("m").unwrap()).kind,
            GateKind::Const1
        );
    }

    #[test]
    fn sweep_removes_unreachable_logic() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let live = b.gate(GateKind::Not, &[a], "live");
        let dead = b.gate(GateKind::Not, &[a], "dead");
        let dead2 = b.gate(GateKind::Not, &[dead], "dead2");
        b.output(live, "o");
        let n = b.finish().unwrap();
        let _ = dead2;
        let (swept, mapping) = sweep_dead(&n).unwrap();
        assert!(swept.find("dead").is_none());
        assert!(swept.find("dead2").is_none());
        assert!(swept.find("live").is_some());
        assert!(mapping.contains_key(&live));
        assert_eq!(swept.len(), 3); // a, live, o
    }

    #[test]
    fn forced_id_outside_netlist_is_an_error_not_a_panic() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        b.output(a, "o");
        let n = b.finish().unwrap();
        let err = propagate_constants(&n, &[(GateId(99), true)]).unwrap_err();
        assert!(matches!(
            err,
            NetlistError::DanglingInput {
                input: GateId(99),
                ..
            }
        ));
    }

    #[test]
    fn sweep_keeps_flip_flop_state() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let g = b.gate(GateKind::Not, &[a], "g");
        // Flip-flop with no downstream consumer: architectural state stays.
        b.scan_dff(g, "q");
        b.output(a, "o");
        let n = b.finish().unwrap();
        let (swept, _) = sweep_dead(&n).unwrap();
        assert!(swept.find("q").is_some());
        assert!(swept.find("g").is_some(), "its D cone stays too");
    }
}

//! Gate kinds and the single-output gate node.

use std::fmt;

/// Identifier of a gate inside one [`crate::Netlist`].
///
/// Because every gate drives exactly one signal, a `GateId` doubles as the
/// identifier of the signal the gate drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub u32);

impl GateId {
    /// Index into per-gate side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The primitive cell alphabet of the netlist IR.
///
/// The alphabet intentionally mirrors what a 45 nm standard-cell mapping of
/// the ITC'99 benchmarks produces after synthesis: 1- and 2-input logic,
/// a 2:1 mux, D flip-flops (plain and scan variants) and the pre-bond-test
/// specific endpoints (TSV ports and wrapper cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GateKind {
    /// Primary input. 0 gate inputs.
    Input,
    /// Primary output marker. 1 gate input; drives nothing downstream.
    Output,
    /// Constant logic 0 source. 0 inputs.
    Const0,
    /// Constant logic 1 source. 0 inputs.
    Const1,
    /// Buffer. 1 input.
    Buf,
    /// Inverter. 1 input.
    Not,
    /// 2-input AND.
    And,
    /// 2-input OR.
    Or,
    /// 2-input NAND.
    Nand,
    /// 2-input NOR.
    Nor,
    /// 2-input XOR.
    Xor,
    /// 2-input XNOR.
    Xnor,
    /// 2:1 multiplexer; inputs are `[a, b, sel]`, output `sel ? b : a`.
    Mux2,
    /// D flip-flop. Input `[d]`, output is `q`. Clock is implicit (single
    /// clock domain, as in the ITC'99 benchmarks).
    Dff,
    /// Scan-converted D flip-flop. Functionally identical to [`Self::Dff`]
    /// in mission mode; in test mode it is fully controllable/observable
    /// through the scan chain. Input `[d]`.
    ScanDff,
    /// Inbound TSV endpoint: a die input driven by another die through a
    /// TSV. Pre-bond it floats, i.e. it is *not* controllable. 0 inputs.
    TsvIn,
    /// Outbound TSV endpoint: a die output driving another die through a
    /// TSV. Pre-bond it is *not* observable. 1 input.
    TsvOut,
    /// Dedicated wrapper cell inserted by DFT (a gated scan cell).
    /// 1 input.
    Wrapper,
}

impl GateKind {
    /// Number of inputs this kind requires, or `None` for variable arity.
    ///
    /// All kinds in this alphabet are fixed-arity.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::TsvIn => 0,
            GateKind::Output
            | GateKind::Buf
            | GateKind::Not
            | GateKind::Dff
            | GateKind::ScanDff
            | GateKind::TsvOut
            | GateKind::Wrapper => 1,
            GateKind::And
            | GateKind::Or
            | GateKind::Nand
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => 2,
            GateKind::Mux2 => 3,
        }
    }

    /// `true` for the kinds that evaluate combinationally from their inputs.
    pub fn is_combinational(self) -> bool {
        matches!(
            self,
            GateKind::Buf
                | GateKind::Not
                | GateKind::And
                | GateKind::Or
                | GateKind::Nand
                | GateKind::Nor
                | GateKind::Xor
                | GateKind::Xnor
                | GateKind::Mux2
                | GateKind::Output
                | GateKind::TsvOut
        )
    }

    /// `true` for state-holding kinds (combinational boundaries).
    pub fn is_sequential(self) -> bool {
        matches!(self, GateKind::Dff | GateKind::ScanDff | GateKind::Wrapper)
    }

    /// `true` for kinds whose output is a combinational source: primary
    /// inputs, constants, flip-flop outputs and inbound TSVs.
    pub fn is_source(self) -> bool {
        matches!(
            self,
            GateKind::Input
                | GateKind::Const0
                | GateKind::Const1
                | GateKind::Dff
                | GateKind::ScanDff
                | GateKind::Wrapper
                | GateKind::TsvIn
        )
    }

    /// `true` for kinds that terminate combinational paths: primary
    /// outputs, flip-flop data inputs and outbound TSVs.
    ///
    /// Note flip-flops are both sources (their Q) and sinks (their D); this
    /// predicate is about the *sink* role.
    pub fn is_sink(self) -> bool {
        matches!(
            self,
            GateKind::Output
                | GateKind::Dff
                | GateKind::ScanDff
                | GateKind::Wrapper
                | GateKind::TsvOut
        )
    }

    /// Evaluate the gate over bit-parallel two-valued logic.
    ///
    /// Each `u64` word carries 64 independent simulation patterns.
    /// Sequential and source kinds are not evaluable; callers must supply
    /// their values externally.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match [`Self::arity`] or the kind
    /// is not combinational (debug builds).
    #[inline]
    pub fn eval_words(self, inputs: &[u64]) -> u64 {
        debug_assert_eq!(inputs.len(), self.arity(), "arity mismatch for {self:?}");
        match self {
            GateKind::Buf | GateKind::Output | GateKind::TsvOut => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs[0] & inputs[1],
            GateKind::Or => inputs[0] | inputs[1],
            GateKind::Nand => !(inputs[0] & inputs[1]),
            GateKind::Nor => !(inputs[0] | inputs[1]),
            GateKind::Xor => inputs[0] ^ inputs[1],
            GateKind::Xnor => !(inputs[0] ^ inputs[1]),
            GateKind::Mux2 => (inputs[0] & !inputs[2]) | (inputs[1] & inputs[2]),
            _ => unreachable!("eval_words on non-combinational kind {self:?}"),
        }
    }

    /// The controlling value of the gate, if it has one (e.g. 0 for AND,
    /// 1 for OR). Used by SCOAP and PODEM backtracing.
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// Whether the gate inverts its (non-controlling) inputs on the way to
    /// the output: NAND/NOR/NOT/XNOR.
    pub fn inverts(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Not | GateKind::Xnor
        )
    }

    /// Short lowercase mnemonic used by the text format and reports.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::Input => "input",
            GateKind::Output => "output",
            GateKind::Const0 => "const0",
            GateKind::Const1 => "const1",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Mux2 => "mux2",
            GateKind::Dff => "dff",
            GateKind::ScanDff => "sdff",
            GateKind::TsvIn => "tsv_in",
            GateKind::TsvOut => "tsv_out",
            GateKind::Wrapper => "wrapper",
        }
    }

    /// Parse a mnemonic produced by [`Self::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<GateKind> {
        Some(match s {
            "input" => GateKind::Input,
            "output" => GateKind::Output,
            "const0" => GateKind::Const0,
            "const1" => GateKind::Const1,
            "buf" => GateKind::Buf,
            "not" => GateKind::Not,
            "and" => GateKind::And,
            "or" => GateKind::Or,
            "nand" => GateKind::Nand,
            "nor" => GateKind::Nor,
            "xor" => GateKind::Xor,
            "xnor" => GateKind::Xnor,
            "mux2" => GateKind::Mux2,
            "dff" => GateKind::Dff,
            "sdff" => GateKind::ScanDff,
            "tsv_in" => GateKind::TsvIn,
            "tsv_out" => GateKind::TsvOut,
            "wrapper" => GateKind::Wrapper,
            _ => return None,
        })
    }

    /// All kinds, for iteration in tests and statistics.
    pub const ALL: [GateKind; 18] = [
        GateKind::Input,
        GateKind::Output,
        GateKind::Const0,
        GateKind::Const1,
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Mux2,
        GateKind::Dff,
        GateKind::ScanDff,
        GateKind::TsvIn,
        GateKind::TsvOut,
        GateKind::Wrapper,
    ];
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One single-output node of the netlist DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Instance name; unique within the netlist.
    pub name: String,
    /// Primitive kind.
    pub kind: GateKind,
    /// Driving signals, ordered per the kind's pin convention.
    pub inputs: Vec<GateId>,
}

impl Gate {
    /// Construct a gate node. Arity is validated by the builder, not here.
    pub fn new(name: impl Into<String>, kind: GateKind, inputs: Vec<GateId>) -> Self {
        Gate {
            name: name.into(),
            kind,
            inputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_eval_expectations() {
        for kind in GateKind::ALL {
            if kind.is_combinational() {
                let inputs = vec![0u64; kind.arity()];
                // Must not panic.
                let _ = kind.eval_words(&inputs);
            }
        }
    }

    #[test]
    fn mnemonic_roundtrip() {
        for kind in GateKind::ALL {
            assert_eq!(GateKind::from_mnemonic(kind.mnemonic()), Some(kind));
        }
        assert_eq!(GateKind::from_mnemonic("bogus"), None);
    }

    #[test]
    fn eval_truth_tables() {
        let t = u64::MAX;
        assert_eq!(GateKind::And.eval_words(&[t, 0]), 0);
        assert_eq!(GateKind::And.eval_words(&[t, t]), t);
        assert_eq!(GateKind::Or.eval_words(&[t, 0]), t);
        assert_eq!(GateKind::Nand.eval_words(&[t, t]), 0);
        assert_eq!(GateKind::Nor.eval_words(&[0, 0]), t);
        assert_eq!(GateKind::Xor.eval_words(&[t, t]), 0);
        assert_eq!(GateKind::Xor.eval_words(&[t, 0]), t);
        assert_eq!(GateKind::Xnor.eval_words(&[t, 0]), 0);
        assert_eq!(GateKind::Not.eval_words(&[0]), t);
        assert_eq!(GateKind::Buf.eval_words(&[t]), t);
        // mux: sel=0 -> a, sel=1 -> b
        assert_eq!(GateKind::Mux2.eval_words(&[t, 0, 0]), t);
        assert_eq!(GateKind::Mux2.eval_words(&[t, 0, t]), 0);
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nand.controlling_value(), Some(false));
        assert_eq!(GateKind::Or.controlling_value(), Some(true));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        assert_eq!(GateKind::Buf.controlling_value(), None);
    }

    #[test]
    fn source_sink_classification() {
        assert!(GateKind::Input.is_source());
        assert!(GateKind::TsvIn.is_source());
        assert!(GateKind::Dff.is_source());
        assert!(GateKind::Dff.is_sink());
        assert!(GateKind::TsvOut.is_sink());
        assert!(GateKind::Output.is_sink());
        assert!(!GateKind::And.is_source());
        assert!(!GateKind::And.is_sink());
    }
}

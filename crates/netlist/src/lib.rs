//! # prebond3d-netlist
//!
//! Gate-level netlist intermediate representation for the `prebond3d`
//! tool-suite, plus the deterministic synthetic ITC'99-style benchmark
//! generator used by the experiment harness.
//!
//! The representation is a single-output DAG: every [`Gate`] drives exactly
//! one signal, identified by its [`GateId`]. Primary inputs, primary outputs,
//! flip-flops and TSV endpoints are all gates with dedicated
//! [`GateKind`]s, so the whole circuit is one homogeneous graph that the
//! simulator, ATPG engine and static timing analyzer can traverse uniformly.
//!
//! Sequential elements ([`GateKind::Dff`] / [`GateKind::ScanDff`]) act as
//! combinational boundaries: combinational traversal
//! ([`traverse::combinational_order`]) treats a flip-flop's output as a
//! pseudo primary input and its input as a pseudo primary output, which is
//! exactly the full-scan view the paper's flow assumes.
//!
//! # Example
//!
//! ```
//! use prebond3d_netlist::{NetlistBuilder, GateKind};
//!
//! let mut b = NetlistBuilder::new("half_adder");
//! let a = b.input("a");
//! let c = b.input("b");
//! let sum = b.gate(GateKind::Xor, &[a, c], "sum");
//! let carry = b.gate(GateKind::And, &[a, c], "carry");
//! b.output(sum, "sum_po");
//! b.output(carry, "carry_po");
//! let netlist = b.finish().expect("netlist is well formed");
//! assert_eq!(netlist.stats().combinational_gates, 2);
//! ```

pub mod bitset;
pub mod builder;
pub mod cone;
pub mod csr;
pub mod edit;
pub mod error;
pub mod format;
pub mod gate;
pub mod itc99;
pub mod netlist;
pub mod stats;
pub mod traverse;
pub mod tuning;
pub mod verilog;

pub use bitset::BitSet;
pub use builder::NetlistBuilder;
pub use cone::{fanin_cone, fanout_cone, ConeSet};
pub use csr::Csr;
pub use error::NetlistError;
pub use gate::{Gate, GateId, GateKind};
pub use netlist::Netlist;
pub use stats::NetlistStats;

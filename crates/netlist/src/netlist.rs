//! The netlist container: a validated single-output gate DAG.

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::gate::{Gate, GateId, GateKind};
use crate::stats::NetlistStats;

/// A validated gate-level netlist.
///
/// Construct through [`crate::NetlistBuilder`] or the text format parser
/// ([`crate::format::parse`]); both enforce the structural invariants:
///
/// * every gate's arity matches its [`GateKind`],
/// * all input references resolve and point at driving kinds,
/// * instance names are unique,
/// * the combinational subgraph is acyclic.
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    /// Fan-out adjacency: for each gate, the gates that consume its output.
    fanouts: Vec<Vec<GateId>>,
    name_index: HashMap<String, GateId>,
}

impl Netlist {
    /// Assemble and validate a netlist from parts. Used by the builder and
    /// parser; library users normally go through [`crate::NetlistBuilder`].
    ///
    /// # Errors
    ///
    /// Returns the first violated structural invariant.
    pub fn from_gates(name: impl Into<String>, gates: Vec<Gate>) -> Result<Self, NetlistError> {
        let name = name.into();
        let mut name_index = HashMap::with_capacity(gates.len());
        for (i, gate) in gates.iter().enumerate() {
            if gate.inputs.len() != gate.kind.arity() {
                return Err(NetlistError::ArityMismatch {
                    gate: gate.name.clone(),
                    kind: gate.kind,
                    got: gate.inputs.len(),
                });
            }
            if name_index
                .insert(gate.name.clone(), GateId(i as u32))
                .is_some()
            {
                return Err(NetlistError::DuplicateName(gate.name.clone()));
            }
        }
        let mut fanouts: Vec<Vec<GateId>> = vec![Vec::new(); gates.len()];
        for (i, gate) in gates.iter().enumerate() {
            for &input in &gate.inputs {
                let driver = gates
                    .get(input.index())
                    .ok_or(NetlistError::DanglingInput {
                        gate: gate.name.clone(),
                        input,
                    })?;
                if matches!(driver.kind, GateKind::Output | GateKind::TsvOut) {
                    return Err(NetlistError::NonDrivingInput {
                        gate: gate.name.clone(),
                        driver: driver.name.clone(),
                    });
                }
                fanouts[input.index()].push(GateId(i as u32));
            }
        }
        let netlist = Netlist {
            name,
            gates,
            fanouts,
            name_index,
        };
        netlist.check_acyclic()?;
        Ok(netlist)
    }

    /// Kahn's algorithm over combinational edges only; sequential outputs
    /// are sources so flip-flop "loops" are legal.
    fn check_acyclic(&self) -> Result<(), NetlistError> {
        // Indegree of a combinational gate = #inputs. Sequential gates have
        // edges INTO them, but we cut edges OUT of them by treating their
        // outputs as sources, so flip-flop feedback is legal.
        let mut indeg = vec![0usize; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            if gate.kind.is_sequential() || gate.kind.arity() == 0 {
                indeg[i] = 0;
            } else {
                indeg[i] = gate.inputs.len();
            }
        }
        let mut queue: Vec<usize> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut seen = 0usize;
        while let Some(i) = queue.pop() {
            seen += 1;
            for &fo in &self.fanouts[i] {
                let j = fo.index();
                if self.gates[j].kind.is_sequential() {
                    continue;
                }
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push(j);
                }
            }
        }
        if seen != self.gates.len() {
            let culprit = indeg
                .iter()
                .position(|&d| d > 0)
                .map(|i| self.gates[i].name.clone())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalCycle(culprit));
        }
        Ok(())
    }

    /// The netlist (module) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of gates (nodes) including ports and TSV endpoints.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` when the netlist has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Access a gate by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Access a gate by id, `None` if out of range.
    pub fn get(&self, id: GateId) -> Option<&Gate> {
        self.gates.get(id.index())
    }

    /// Look up a gate id by instance name.
    pub fn find(&self, name: &str) -> Option<GateId> {
        self.name_index.get(name).copied()
    }

    /// Iterate over `(GateId, &Gate)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId(i as u32), g))
    }

    /// All gate ids in id order.
    pub fn ids(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.gates.len() as u32).map(GateId)
    }

    /// Gates consuming `id`'s output.
    #[inline]
    pub fn fanout(&self, id: GateId) -> &[GateId] {
        &self.fanouts[id.index()]
    }

    /// Ids of all gates of the given kind, in id order.
    pub fn of_kind(&self, kind: GateKind) -> Vec<GateId> {
        self.iter()
            .filter(|(_, g)| g.kind == kind)
            .map(|(id, _)| id)
            .collect()
    }

    /// Primary inputs.
    pub fn inputs(&self) -> Vec<GateId> {
        self.of_kind(GateKind::Input)
    }

    /// Primary outputs.
    pub fn outputs(&self) -> Vec<GateId> {
        self.of_kind(GateKind::Output)
    }

    /// Flip-flops (plain and scan).
    pub fn flip_flops(&self) -> Vec<GateId> {
        self.iter()
            .filter(|(_, g)| g.kind.is_sequential())
            .map(|(id, _)| id)
            .collect()
    }

    /// Inbound TSV endpoints (die inputs fed through TSVs).
    pub fn inbound_tsvs(&self) -> Vec<GateId> {
        self.of_kind(GateKind::TsvIn)
    }

    /// Outbound TSV endpoints (die outputs feeding TSVs).
    pub fn outbound_tsvs(&self) -> Vec<GateId> {
        self.of_kind(GateKind::TsvOut)
    }

    /// Aggregate statistics used by reports and Table II.
    pub fn stats(&self) -> NetlistStats {
        NetlistStats::of(self)
    }

    /// Content signature: FNV-1a over the name plus every gate's kind and
    /// input wiring, in id order.
    ///
    /// Two netlists share a signature only when they are structurally
    /// identical (same name, same gates in the same order, same wiring) —
    /// gate *instance names* are deliberately excluded, so a pure rename
    /// of internal nodes keeps the signature (and any caches keyed on it)
    /// valid. This is the invalidation key for everything that memoizes
    /// work per netlist (`AtpgProbe`, the serve warm cache): a mutated
    /// netlist that keeps a colliding module name must still miss.
    pub fn signature(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.name.as_bytes());
        eat(&(self.gates.len() as u64).to_le_bytes());
        for gate in &self.gates {
            eat(&[gate.kind as u8]);
            for &input in &gate.inputs {
                eat(&input.0.to_le_bytes());
            }
        }
        h
    }

    /// Consume the netlist back into its gate list (e.g. to edit and
    /// re-validate through [`Self::from_gates`]).
    pub fn into_gates(self) -> Vec<Gate> {
        self.gates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input("a");
        let c = b.input("b");
        let g = b.gate(GateKind::And, &[a, c], "g");
        b.output(g, "o");
        b.finish().unwrap()
    }

    #[test]
    fn lookup_and_fanout() {
        let n = tiny();
        let a = n.find("a").unwrap();
        let g = n.find("g").unwrap();
        assert_eq!(n.fanout(a), &[g]);
        assert_eq!(n.gate(g).inputs.len(), 2);
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
        assert!(n.find("nope").is_none());
    }

    #[test]
    fn signature_tracks_content_not_just_name_and_len() {
        let n = tiny();
        assert_eq!(n.signature(), tiny().signature(), "deterministic");
        // Same module name, same gate count, different wiring: the b input
        // feeds an OR instead of an AND. Name+len keying would collide.
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input("a");
        let c = b.input("b");
        let g = b.gate(GateKind::Or, &[a, c], "g");
        b.output(g, "o");
        let mutated = b.finish().unwrap();
        assert_eq!(n.len(), mutated.len());
        assert_eq!(n.name(), mutated.name());
        assert_ne!(n.signature(), mutated.signature());
        // Renaming internal instances keeps the signature: the structure
        // (kinds + wiring) is unchanged.
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input("x");
        let c = b.input("y");
        let g = b.gate(GateKind::And, &[a, c], "z");
        b.output(g, "w");
        let renamed = b.finish().unwrap();
        assert_eq!(n.signature(), renamed.signature());
    }

    #[test]
    fn rejects_duplicate_names() {
        let gates = vec![
            Gate::new("x", GateKind::Input, vec![]),
            Gate::new("x", GateKind::Input, vec![]),
        ];
        assert!(matches!(
            Netlist::from_gates("d", gates),
            Err(NetlistError::DuplicateName(_))
        ));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let gates = vec![
            Gate::new("a", GateKind::Input, vec![]),
            Gate::new("g", GateKind::And, vec![GateId(0)]),
        ];
        assert!(matches!(
            Netlist::from_gates("d", gates),
            Err(NetlistError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn rejects_dangling_input() {
        let gates = vec![Gate::new("g", GateKind::Not, vec![GateId(9)])];
        assert!(matches!(
            Netlist::from_gates("d", gates),
            Err(NetlistError::DanglingInput { .. })
        ));
    }

    #[test]
    fn rejects_combinational_cycle() {
        // g0 = not(g1), g1 = not(g0): a combinational loop.
        let gates = vec![
            Gate::new("g0", GateKind::Not, vec![GateId(1)]),
            Gate::new("g1", GateKind::Not, vec![GateId(0)]),
        ];
        assert!(matches!(
            Netlist::from_gates("d", gates),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn allows_sequential_loop() {
        // q = dff(d), d = not(q): legal feedback through a flip-flop.
        let gates = vec![
            Gate::new("q", GateKind::Dff, vec![GateId(1)]),
            Gate::new("d", GateKind::Not, vec![GateId(0)]),
        ];
        assert!(Netlist::from_gates("d", gates).is_ok());
    }

    #[test]
    fn rejects_output_as_driver() {
        let gates = vec![
            Gate::new("a", GateKind::Input, vec![]),
            Gate::new("o", GateKind::Output, vec![GateId(0)]),
            Gate::new("g", GateKind::Not, vec![GateId(1)]),
        ];
        assert!(matches!(
            Netlist::from_gates("d", gates),
            Err(NetlistError::NonDrivingInput { .. })
        ));
    }
}

//! Aggregate netlist statistics (the raw material of the paper's Table II).

use std::fmt;

use crate::gate::GateKind;
use crate::netlist::Netlist;

/// Counts of the structurally interesting gate populations of a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Primary inputs.
    pub primary_inputs: usize,
    /// Primary outputs.
    pub primary_outputs: usize,
    /// Plain (non-scan) flip-flops.
    pub flip_flops: usize,
    /// Scan flip-flops.
    pub scan_flip_flops: usize,
    /// Combinational logic gates (excluding port/TSV/wrapper markers).
    pub combinational_gates: usize,
    /// Inbound TSV endpoints.
    pub inbound_tsvs: usize,
    /// Outbound TSV endpoints.
    pub outbound_tsvs: usize,
    /// Dedicated wrapper cells already present.
    pub wrapper_cells: usize,
    /// Total node count.
    pub total: usize,
}

impl NetlistStats {
    /// Compute statistics for `netlist`.
    pub fn of(netlist: &Netlist) -> Self {
        let mut s = NetlistStats {
            total: netlist.len(),
            ..NetlistStats::default()
        };
        for (_, gate) in netlist.iter() {
            match gate.kind {
                GateKind::Input => s.primary_inputs += 1,
                GateKind::Output => s.primary_outputs += 1,
                GateKind::Dff => s.flip_flops += 1,
                GateKind::ScanDff => s.scan_flip_flops += 1,
                GateKind::TsvIn => s.inbound_tsvs += 1,
                GateKind::TsvOut => s.outbound_tsvs += 1,
                GateKind::Wrapper => s.wrapper_cells += 1,
                GateKind::Const0 | GateKind::Const1 => {}
                _ => s.combinational_gates += 1,
            }
        }
        s
    }

    /// Total TSV endpoints (`#TSVs` column of Table II).
    pub fn tsvs(&self) -> usize {
        self.inbound_tsvs + self.outbound_tsvs
    }

    /// Total sequential elements.
    pub fn sequential(&self) -> usize {
        self.flip_flops + self.scan_flip_flops
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PI={} PO={} FF={} SFF={} gates={} TSV={} (in={}, out={})",
            self.primary_inputs,
            self.primary_outputs,
            self.flip_flops,
            self.scan_flip_flops,
            self.combinational_gates,
            self.tsvs(),
            self.inbound_tsvs,
            self.outbound_tsvs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn counts_each_population() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let ti = b.tsv_in("ti");
        let g = b.gate(GateKind::And, &[a, ti], "g");
        let q = b.scan_dff(g, "q");
        let d = b.dff(q, "d");
        b.tsv_out(d, "to");
        b.output(q, "o");
        let n = b.finish().unwrap();
        let s = n.stats();
        assert_eq!(s.primary_inputs, 1);
        assert_eq!(s.primary_outputs, 1);
        assert_eq!(s.scan_flip_flops, 1);
        assert_eq!(s.flip_flops, 1);
        assert_eq!(s.combinational_gates, 1);
        assert_eq!(s.inbound_tsvs, 1);
        assert_eq!(s.outbound_tsvs, 1);
        assert_eq!(s.tsvs(), 2);
        assert_eq!(s.sequential(), 2);
        assert_eq!(s.total, 7);
        assert!(!s.to_string().is_empty());
    }
}

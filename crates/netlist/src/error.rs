//! Error type shared by netlist construction, validation and parsing.

use std::error::Error;
use std::fmt;

use crate::gate::{GateId, GateKind};

/// Errors produced while building, validating or parsing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate was declared with the wrong number of inputs.
    ArityMismatch {
        /// Offending gate name.
        gate: String,
        /// Its kind.
        kind: GateKind,
        /// Inputs it was given.
        got: usize,
    },
    /// A gate input references a gate id that does not exist.
    DanglingInput {
        /// Offending gate name.
        gate: String,
        /// The missing id.
        input: GateId,
    },
    /// Two gates share the same instance name.
    DuplicateName(String),
    /// The combinational portion of the netlist contains a cycle through
    /// the named gate.
    CombinationalCycle(String),
    /// A gate input references a gate that cannot drive logic
    /// (e.g. an [`GateKind::Output`] marker or a [`GateKind::TsvOut`]).
    NonDrivingInput {
        /// Offending gate name.
        gate: String,
        /// Name of the non-driving gate it references.
        driver: String,
    },
    /// Text-format parse error with 1-based line number.
    Parse {
        /// Line the error occurred on.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ArityMismatch { gate, kind, got } => write!(
                f,
                "gate `{gate}` of kind {kind} expects {} inputs, got {got}",
                kind.arity()
            ),
            NetlistError::DanglingInput { gate, input } => {
                write!(f, "gate `{gate}` references undefined signal {input}")
            }
            NetlistError::DuplicateName(name) => {
                write!(f, "duplicate gate name `{name}`")
            }
            NetlistError::CombinationalCycle(name) => {
                write!(f, "combinational cycle through gate `{name}`")
            }
            NetlistError::NonDrivingInput { gate, driver } => {
                write!(
                    f,
                    "gate `{gate}` uses non-driving gate `{driver}` as an input"
                )
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            NetlistError::ArityMismatch {
                gate: "g".into(),
                kind: GateKind::And,
                got: 3,
            },
            NetlistError::DanglingInput {
                gate: "g".into(),
                input: GateId(7),
            },
            NetlistError::DuplicateName("x".into()),
            NetlistError::CombinationalCycle("loop".into()),
            NetlistError::Parse {
                line: 3,
                message: "bad token".into(),
            },
        ];
        for e in errors {
            let text = e.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase() || text.starts_with('`'));
        }
    }
}

//! A line-oriented structural netlist text format.
//!
//! One gate per line: `<name> = <kind>(<input>, <input>, ...)`, preceded by
//! a header line `circuit <name>`. Comments start with `#`. Gates may be
//! listed in any order; forward references are resolved after parsing.
//!
//! ```text
//! circuit half_adder
//! a    = input()
//! b    = input()
//! sum  = xor(a, b)
//! cy   = and(a, b)
//! po0  = output(sum)
//! po1  = output(cy)
//! ```
//!
//! The format exists so benchmark instances, DFT-transformed netlists and
//! test fixtures can be round-tripped and diffed as plain text.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::error::NetlistError;
use crate::gate::{Gate, GateId, GateKind};
use crate::netlist::Netlist;

/// Serialize `netlist` into the text format.
///
/// The output lists gates in id order and round-trips through [`parse`]
/// into a structurally identical netlist.
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "circuit {}", netlist.name());
    for (_, gate) in netlist.iter() {
        let args: Vec<&str> = gate
            .inputs
            .iter()
            .map(|&i| netlist.gate(i).name.as_str())
            .collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            gate.name,
            gate.kind.mnemonic(),
            args.join(", ")
        );
    }
    out
}

/// Parse the text format produced by [`write`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] with a 1-based line number on malformed
/// input, and structural validation errors (duplicate names, arity, cycles)
/// from [`Netlist::from_gates`].
pub fn parse(text: &str) -> Result<Netlist, NetlistError> {
    let mut name: Option<String> = None;
    // (line_no, gate_name, kind, input names)
    let mut raw: Vec<(usize, String, GateKind, Vec<String>)> = Vec::new();

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("circuit ") {
            if name.is_some() {
                return Err(NetlistError::Parse {
                    line: lineno,
                    message: "duplicate `circuit` header".into(),
                });
            }
            name = Some(rest.trim().to_string());
            continue;
        }
        let (lhs, rhs) = line.split_once('=').ok_or_else(|| NetlistError::Parse {
            line: lineno,
            message: "expected `name = kind(args)`".into(),
        })?;
        let gate_name = lhs.trim().to_string();
        if gate_name.is_empty() {
            return Err(NetlistError::Parse {
                line: lineno,
                message: "empty gate name".into(),
            });
        }
        let rhs = rhs.trim();
        let (kind_str, args_str) = rhs
            .split_once('(')
            .and_then(|(k, a)| a.strip_suffix(')').map(|a| (k.trim(), a.trim())))
            .ok_or_else(|| NetlistError::Parse {
                line: lineno,
                message: format!("malformed gate expression `{rhs}`"),
            })?;
        let kind = GateKind::from_mnemonic(kind_str).ok_or_else(|| NetlistError::Parse {
            line: lineno,
            message: format!("unknown gate kind `{kind_str}`"),
        })?;
        let args: Vec<String> = if args_str.is_empty() {
            Vec::new()
        } else {
            args_str.split(',').map(|a| a.trim().to_string()).collect()
        };
        raw.push((lineno, gate_name, kind, args));
    }

    let name = name.ok_or(NetlistError::Parse {
        line: 1,
        message: "missing `circuit <name>` header".into(),
    })?;

    let index: HashMap<&str, GateId> = raw
        .iter()
        .enumerate()
        .map(|(i, (_, n, _, _))| (n.as_str(), GateId(i as u32)))
        .collect();

    let mut gates = Vec::with_capacity(raw.len());
    for (lineno, gate_name, kind, args) in &raw {
        let mut inputs = Vec::with_capacity(args.len());
        for arg in args {
            let id = index.get(arg.as_str()).ok_or_else(|| NetlistError::Parse {
                line: *lineno,
                message: format!("gate `{gate_name}` references undefined signal `{arg}`"),
            })?;
            inputs.push(*id);
        }
        gates.push(Gate::new(gate_name.clone(), *kind, inputs));
    }
    Netlist::from_gates(name, gates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("sample");
        let a = b.input("a");
        let c = b.input("b");
        let ti = b.tsv_in("ti0");
        let x = b.gate(GateKind::Xor, &[a, c], "x");
        let m = b.gate(GateKind::Mux2, &[x, ti, a], "m");
        let q = b.scan_dff(m, "q");
        b.tsv_out(q, "to0");
        b.output(q, "po");
        b.finish().unwrap()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let original = sample();
        let text = write(&original);
        let reparsed = parse(&text).unwrap();
        assert_eq!(original.name(), reparsed.name());
        assert_eq!(original.len(), reparsed.len());
        for (id, gate) in original.iter() {
            let other = reparsed.gate(reparsed.find(&gate.name).unwrap());
            assert_eq!(gate.kind, other.kind, "kind of {}", gate.name);
            let _ = id;
            let orig_inputs: Vec<&str> = gate
                .inputs
                .iter()
                .map(|&i| original.gate(i).name.as_str())
                .collect();
            let new_inputs: Vec<&str> = other
                .inputs
                .iter()
                .map(|&i| reparsed.gate(i).name.as_str())
                .collect();
            assert_eq!(orig_inputs, new_inputs);
        }
    }

    #[test]
    fn parse_supports_comments_and_forward_refs() {
        let text = "\
# a comment
circuit fwd
o = output(g)   # forward reference
g = not(a)
a = input()
";
        let n = parse(text).unwrap();
        assert_eq!(n.name(), "fwd");
        assert_eq!(n.len(), 3);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "circuit x\ng = frob(a)\n";
        match parse(bad) {
            Err(NetlistError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(matches!(
            parse("a = input()\n"),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn undefined_signal_is_an_error() {
        let bad = "circuit x\ng = not(ghost)\n";
        assert!(matches!(
            parse(bad),
            Err(NetlistError::Parse { line: 2, .. })
        ));
    }
}

//! Topological traversal and levelization of the combinational subgraph.

use crate::gate::{GateId, GateKind};
use crate::netlist::Netlist;

/// A topological order over the combinational gates of `netlist`.
///
/// Sources (primary inputs, constants, flip-flop outputs, inbound TSVs) come
/// first, then every combinational gate after all of its drivers. Sequential
/// gates appear in the order as *sources* (their Q pin); their D-pin side is
/// reached like any other sink.
///
/// The returned order contains **every** gate exactly once, so evaluating
/// gates in this order yields a complete single-cycle simulation.
pub fn combinational_order(netlist: &Netlist) -> Vec<GateId> {
    let n = netlist.len();
    let mut indeg = vec![0usize; n];
    for (i, gate) in netlist.iter().map(|(id, g)| (id.index(), g)) {
        indeg[i] = if gate.kind.is_sequential() || gate.kind.arity() == 0 {
            0
        } else {
            gate.inputs.len()
        };
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    // Stable: process in ascending id order for determinism.
    queue.sort_unstable();
    queue.reverse();
    let mut order = Vec::with_capacity(n);
    let mut heap = std::collections::BinaryHeap::new();
    for i in queue {
        heap.push(std::cmp::Reverse(i));
    }
    while let Some(std::cmp::Reverse(i)) = heap.pop() {
        order.push(GateId(i as u32));
        for &fo in netlist.fanout(GateId(i as u32)) {
            let j = fo.index();
            if netlist.gate(fo).kind.is_sequential() {
                continue;
            }
            indeg[j] -= 1;
            if indeg[j] == 0 {
                heap.push(std::cmp::Reverse(j));
            }
        }
    }
    debug_assert_eq!(order.len(), n, "netlist validated as acyclic");
    order
}

/// Combinational logic level of every gate.
///
/// Sources are level 0; every combinational gate is `1 + max(level of
/// drivers)`. Sequential gates are level 0 (as sources); their D input's
/// level is available through the driving gate.
pub fn levels(netlist: &Netlist) -> Vec<u32> {
    let order = combinational_order(netlist);
    let mut level = vec![0u32; netlist.len()];
    for id in order {
        let gate = netlist.gate(id);
        if gate.kind.is_sequential() || gate.kind.arity() == 0 {
            level[id.index()] = 0;
        } else {
            level[id.index()] = gate
                .inputs
                .iter()
                .map(|&i| level[i.index()] + 1)
                .max()
                .unwrap_or(0);
        }
    }
    level
}

/// Maximum combinational depth (in gate levels) of the netlist.
pub fn depth(netlist: &Netlist) -> u32 {
    levels(netlist).into_iter().max().unwrap_or(0)
}

/// Combinational sources of the netlist: primary inputs, constants,
/// flip-flop outputs and inbound TSVs.
pub fn sources(netlist: &Netlist) -> Vec<GateId> {
    netlist
        .iter()
        .filter(|(_, g)| g.kind.is_source())
        .map(|(id, _)| id)
        .collect()
}

/// Combinational sinks of the netlist: primary outputs, flip-flop D inputs
/// (represented by the flip-flop gate itself) and outbound TSVs.
pub fn sinks(netlist: &Netlist) -> Vec<GateId> {
    netlist
        .iter()
        .filter(|(_, g)| g.kind.is_sink())
        .map(|(id, _)| id)
        .collect()
}

/// `true` if `kind`'s output participates in combinational propagation
/// (everything except pure sinks).
pub fn propagates(kind: GateKind) -> bool {
    !matches!(kind, GateKind::Output | GateKind::TsvOut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn chain(depth: usize) -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        let mut sig = b.input("a");
        for i in 0..depth {
            sig = b.gate(GateKind::Not, &[sig], format!("n{i}"));
        }
        b.output(sig, "o");
        b.finish().unwrap()
    }

    #[test]
    fn order_respects_dependencies() {
        let n = chain(10);
        let order = combinational_order(&n);
        assert_eq!(order.len(), n.len());
        let mut pos = vec![0usize; n.len()];
        for (p, id) in order.iter().enumerate() {
            pos[id.index()] = p;
        }
        for (id, gate) in n.iter() {
            if gate.kind.is_sequential() {
                continue;
            }
            for &input in &gate.inputs {
                assert!(pos[input.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn levels_of_chain() {
        let n = chain(5);
        assert_eq!(depth(&n), 6); // 5 inverters + output marker
        let l = levels(&n);
        assert_eq!(l[n.find("a").unwrap().index()], 0);
        assert_eq!(l[n.find("n4").unwrap().index()], 5);
    }

    #[test]
    fn ff_cuts_levels() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, &[a], "g1");
        let q = b.dff(g1, "q");
        let g2 = b.gate(GateKind::Not, &[q], "g2");
        b.output(g2, "o");
        let n = b.finish().unwrap();
        let l = levels(&n);
        assert_eq!(l[n.find("q").unwrap().index()], 0);
        assert_eq!(l[n.find("g2").unwrap().index()], 1);
    }

    #[test]
    fn sources_and_sinks() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let ti = b.tsv_in("ti");
        let g = b.gate(GateKind::And, &[a, ti], "g");
        let q = b.scan_dff(g, "q");
        let g2 = b.gate(GateKind::Or, &[q, a], "g2");
        b.tsv_out(g2, "to");
        b.output(g2, "o");
        let n = b.finish().unwrap();
        let src = sources(&n);
        let snk = sinks(&n);
        assert_eq!(src.len(), 3); // a, ti, q
        assert_eq!(snk.len(), 3); // q (D side), to, o
    }
}

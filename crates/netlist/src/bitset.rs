//! A compact fixed-capacity bit set keyed by dense `usize` indices.
//!
//! Used pervasively for cone membership, fault marking and visited sets.
//! Much faster than `HashSet<GateId>` for the dense id spaces a netlist
//! produces.

/// Fixed-capacity bit set over `0..len`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set able to hold indices `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Capacity (exclusive upper bound on indices).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Insert `index`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bitset index {index} out of range {}",
            self.len
        );
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Remove `index`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        assert!(index < self.len);
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.len {
            return false;
        }
        self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Remove all elements, keeping capacity.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// `true` if `self` and `other` share at least one element.
    ///
    /// Capacities need not match; comparison runs over the common prefix.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Number of elements present in both sets.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// The backing words, 64 indices per word, lowest indices first.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Indices of the first and last non-zero backing word (inclusive), or
    /// `None` for an empty set. Intersection-style queries only need to
    /// walk the overlap of both operands' spans — the word-level fast path
    /// the cone cache builds on.
    pub fn nonzero_word_span(&self) -> Option<(usize, usize)> {
        let first = self.words.iter().position(|&w| w != 0)?;
        let last = self.words.iter().rposition(|&w| w != 0)?;
        Some((first, last))
    }

    /// [`Self::intersects`] restricted to the word range `lo..=hi`
    /// (clipped to both operands). Equivalent to the full scan whenever
    /// `lo..=hi` covers the non-zero span of either operand.
    pub fn intersects_clipped(&self, other: &BitSet, lo: usize, hi: usize) -> bool {
        let end = (hi + 1).min(self.words.len()).min(other.words.len());
        if lo >= end {
            return false;
        }
        self.words[lo..end]
            .iter()
            .zip(other.words[lo..end].iter())
            .any(|(a, b)| a & b != 0)
    }

    /// [`Self::intersection_count`] restricted to the word range
    /// `lo..=hi` (clipped to both operands). Equivalent to the full scan
    /// whenever `lo..=hi` covers the non-zero span of either operand.
    pub fn intersection_count_clipped(&self, other: &BitSet, lo: usize, hi: usize) -> usize {
        let end = (hi + 1).min(self.words.len()).min(other.words.len());
        if lo >= end {
            return 0;
        }
        self.words[lo..end]
            .iter()
            .zip(other.words[lo..end].iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// Iterate over the set bits in ascending index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over set bits, produced by [`BitSet::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the maximum element + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(cap);
        for i in items {
            set.insert(i);
        }
        set
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn iter_yields_sorted() {
        let mut s = BitSet::new(200);
        for i in [5usize, 63, 64, 65, 199, 0] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 65, 199]);
    }

    #[test]
    fn intersects_and_union() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(10);
        b.insert(11);
        assert!(!a.intersects(&b));
        b.insert(10);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection_count(&b), 1);
        a.union_with(&b);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [3usize, 9, 9, 1].into_iter().collect();
        assert_eq!(s.count(), 3);
        assert!(s.contains(9));
        assert_eq!(s.capacity(), 10);
    }

    #[test]
    fn word_span_and_clipped_ops_match_full_scans() {
        let mut a = BitSet::new(512);
        let mut b = BitSet::new(512);
        assert_eq!(a.nonzero_word_span(), None);
        for i in [70usize, 131, 200] {
            a.insert(i);
        }
        for i in [131usize, 300] {
            b.insert(i);
        }
        assert_eq!(a.nonzero_word_span(), Some((1, 3)));
        assert_eq!(b.nonzero_word_span(), Some((2, 4)));
        // Clipping to the span overlap reproduces the full answers.
        assert!(a.intersects_clipped(&b, 2, 3));
        assert_eq!(a.intersection_count_clipped(&b, 2, 3), 1);
        assert_eq!(a.intersection_count(&b), 1);
        // A range past the data finds nothing; an inverted range is empty.
        assert!(!a.intersects_clipped(&b, 5, 7));
        assert_eq!(a.intersection_count_clipped(&b, 5, 3), 0);
        assert_eq!(a.words().len(), 8);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(1000));
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(64);
        assert!(s.is_empty());
        s.insert(3);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 64);
    }
}

//! Error-path coverage for the text-format parser: malformed input of any
//! kind must come back as a [`NetlistError`], never a panic.
//!
//! Two layers: a table of targeted malformations (each naming the error
//! variant it must produce), and a seeded corruption sweep that mangles
//! the serialized form of a generated die hundreds of ways — truncations,
//! byte splices, line drops and duplications — accepting any `Ok`/`Err`
//! outcome but treating a panic as failure (the harness aborts the test
//! process on panic, so merely *running* each case is the assertion).

use prebond3d_netlist::itc99::{generate_die, DieSpec};
use prebond3d_netlist::{format, NetlistError};
use prebond3d_rng::StdRng;

#[test]
fn malformed_gate_arity_is_an_arity_error() {
    let text = "circuit x\na = input()\nb = input()\ng = not(a, b)\npo = output(g)\n";
    match format::parse(text) {
        Err(NetlistError::ArityMismatch { gate, got, .. }) => {
            assert_eq!(gate, "g");
            assert_eq!(got, 2);
        }
        other => panic!("expected arity mismatch, got {other:?}"),
    }
}

#[test]
fn zero_inputs_on_a_binary_gate_is_an_arity_error() {
    let text = "circuit x\ng = and()\npo = output(g)\n";
    assert!(matches!(
        format::parse(text),
        Err(NetlistError::ArityMismatch { got: 0, .. })
    ));
}

#[test]
fn duplicate_names_are_rejected() {
    let text = "circuit x\na = input()\na = input()\npo = output(a)\n";
    match format::parse(text) {
        Err(NetlistError::DuplicateName(name)) => assert_eq!(name, "a"),
        other => panic!("expected duplicate name, got {other:?}"),
    }
}

#[test]
fn dangling_reference_is_a_parse_error_with_its_line() {
    let text = "circuit x\na = input()\ng = not(phantom)\n";
    match format::parse(text) {
        Err(NetlistError::Parse { line, message }) => {
            assert_eq!(line, 3);
            assert!(message.contains("phantom"));
        }
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn combinational_loop_is_rejected() {
    let text = "circuit x\ng1 = not(g2)\ng2 = not(g1)\npo = output(g1)\n";
    assert!(matches!(
        format::parse(text),
        Err(NetlistError::CombinationalCycle(_))
    ));
}

#[test]
fn output_as_driver_is_rejected() {
    let text = "circuit x\na = input()\npo = output(a)\ng = not(po)\npo2 = output(g)\n";
    assert!(matches!(
        format::parse(text),
        Err(NetlistError::NonDrivingInput { .. })
    ));
}

#[test]
fn truncated_files_never_panic() {
    let text = sample_text();
    // Cut at every byte boundary of the first 200 bytes and at every line.
    for cut in 0..text.len().min(200) {
        if text.is_char_boundary(cut) {
            let _ = format::parse(&text[..cut]);
        }
    }
    let lines: Vec<&str> = text.lines().collect();
    for keep in 0..lines.len() {
        let _ = format::parse(&lines[..keep].join("\n"));
    }
}

#[test]
fn garbage_lines_are_parse_errors() {
    for bad in [
        "circuit x\n= not(a)\n",
        "circuit x\ng not(a)\n",
        "circuit x\ng = not(a\n",
        "circuit x\ng = (a)\n",
        "circuit x\ng = not a)\n",
        "circuit x\ncircuit y\n",
        "g = not(a)\n",
        "",
    ] {
        assert!(
            matches!(format::parse(bad), Err(NetlistError::Parse { .. })),
            "input {bad:?} must be a parse error"
        );
    }
}

fn sample_text() -> String {
    let die = generate_die(&DieSpec {
        name: "fuzz".to_string(),
        scan_flip_flops: 12,
        gates: 160,
        inbound_tsvs: 5,
        outbound_tsvs: 5,
        primary_inputs: 4,
        primary_outputs: 4,
        seed: 0xF00D,
    });
    format::write(&die)
}

/// Seeded corruption sweep: splice random bytes, drop/duplicate random
/// lines, truncate at random offsets. The parser must return — `Ok` or
/// `Err` — for every mutation, across every seed.
#[test]
fn seeded_corruption_sweep_never_panics() {
    let text = sample_text();
    let bytes = text.as_bytes();
    let mut parsed_ok = 0usize;
    let mut rejected = 0usize;
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0x5EED_0000 + seed);
        for _case in 0..8 {
            let mutated = match rng.gen_range(0..4u32) {
                // Truncate at a random offset.
                0 => {
                    let mut cut = rng.gen_range(0..bytes.len());
                    while !text.is_char_boundary(cut) {
                        cut -= 1;
                    }
                    text[..cut].to_string()
                }
                // Overwrite a random byte with a random printable char.
                1 => {
                    let mut b = bytes.to_vec();
                    let pos = rng.gen_range(0..b.len());
                    b[pos] = 32 + (rng.gen_range(0..95u32) as u8);
                    String::from_utf8_lossy(&b).into_owned()
                }
                // Drop a random line.
                2 => {
                    let lines: Vec<&str> = text.lines().collect();
                    let drop = rng.gen_range(0..lines.len());
                    lines
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != drop)
                        .map(|(_, l)| *l)
                        .collect::<Vec<_>>()
                        .join("\n")
                }
                // Duplicate a random line (duplicate names / double header).
                _ => {
                    let lines: Vec<&str> = text.lines().collect();
                    let dup = rng.gen_range(0..lines.len());
                    let mut out: Vec<&str> = lines.clone();
                    out.insert(dup, lines[dup]);
                    out.join("\n")
                }
            };
            match format::parse(&mutated) {
                Ok(_) => parsed_ok += 1,
                Err(_) => rejected += 1,
            }
        }
    }
    // The sweep must have exercised both outcomes: single-byte overwrites
    // of a comment-free format nearly always break something, while a
    // dropped trailing line often still validates.
    assert_eq!(parsed_ok + rejected, 64 * 8);
    assert!(rejected > 0, "corruptions were all silently accepted");
}
